// Package api exposes the library over HTTP as a small JSON service — the
// deployment face of the reproduction: a scheduler node (or a curious
// colleague with curl) can ask for cluster measures, optimal schedules, and
// budget designs without linking Go code.
//
// Endpoints (all GET unless noted):
//
//	GET  /v1/measure?profile=1,0.5,0.25[&tau=..&pi=..&delta=..]
//	     → X, HECR, work rate, moments (served through a bounded LRU cache
//	       keyed on the canonicalized params+profile)
//	GET  /v1/compare?p1=..&p2=..            → winner + per-cluster measures
//	POST /v1/batch {profiles, params?}      → measures for many profiles in
//	     one request, evaluated through internal/incr with parallel fan-out
//	POST /v1/schedule {profile, lifespan}   → allocations + timeline
//	POST /v1/design {catalog, budget}       → knapsack-optimal composition
//	GET  /v1/speedup?profile=..&phi=|psi=   → which computer to upgrade (§3)
//	POST /v1/simulate/faulty {profile, lifespan, faults, replan?}
//	     → degraded-work report: salvage, loss, and degradation vs the
//	       fault-free optimum W(L;P), optionally under the replanner
//	GET  /v1/statz                          → cache/batch counters + serving
//	     (shed, panics, deadline) counters
//	GET  /v1/healthz                        → liveness
//
// Parameters default to the paper's Table 1 environment. Every route is
// wrapped in hardening middleware: panic recovery, a bounded admission
// queue that sheds 429 + Retry-After at capacity, and per-request context
// deadlines (see ServingConfig).
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"hetero/internal/catalog"
	"hetero/internal/core"
	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/schedule"
)

// DefaultMeasureCacheSize bounds the /v1/measure LRU when NewServer is used.
const DefaultMeasureCacheSize = 1024

// MaxBatchProfiles bounds one POST /v1/batch request; larger workloads
// should shard across requests.
const MaxBatchProfiles = 4096

// Server carries the default environment plus the serving-path state: the
// /v1/measure response cache, the admission-control tokens, and the
// /v1/statz counters.
type Server struct {
	Defaults model.Params
	// Serving tunes the hardening middleware; set it before the first
	// Handler call. The zero value uses the package defaults.
	Serving ServingConfig

	cache         *responseCache
	rawCache      *responseCache // raw-query front layer for large queries
	batchRequests atomic.Uint64
	batchProfiles atomic.Uint64

	serving     ServingConfig // Serving with defaults resolved
	runTokens   chan struct{}
	queueTokens chan struct{}
	shed        atomic.Uint64
	panics      atomic.Uint64
	deadlines   atomic.Uint64
	inFlight    atomic.Int64
}

// NewServer returns a server defaulting to Table 1 parameters with the
// default measure-cache size.
func NewServer() *Server { return NewServerCacheSize(DefaultMeasureCacheSize) }

// NewServerCacheSize returns a server with an explicit /v1/measure cache
// bound; cacheSize ≤ 0 disables response caching. The cache is sharded
// automatically and coalesces concurrent identical misses.
func NewServerCacheSize(cacheSize int) *Server {
	return &Server{
		Defaults: model.Table1(),
		cache:    newResponseCache(cacheSize),
		rawCache: newResponseCache(cacheSize),
	}
}

// NewServerCacheOpts returns a server with full cache control: shards is
// the lock-domain count (0 means automatic, values round down to a power of
// two) and coalesce toggles singleflight miss coalescing. shards = 1 with
// coalesce = false reproduces the historical single-lock cache — the
// baseline configuration cmd/benchserve measures speedups against; that
// baseline also runs without the raw-query front layer.
func NewServerCacheOpts(cacheSize, shards int, coalesce bool) *Server {
	rawSize := cacheSize
	if !coalesce {
		rawSize = 0 // historical baseline: canonical single-lock cache only
	}
	return &Server{
		Defaults: model.Table1(),
		cache:    newResponseCacheOpts(cacheSize, shards, coalesce),
		rawCache: newResponseCacheOpts(rawSize, shards, coalesce),
	}
}

// Handler returns the HTTP handler with all routes mounted, wrapped in the
// hardening middleware (panic recovery, bounded admission, per-request
// deadlines — see ServingConfig).
func (s *Server) Handler() http.Handler {
	if s.cache == nil { // zero-constructed Server literals keep working
		s.cache = newResponseCache(DefaultMeasureCacheSize)
	}
	if s.rawCache == nil {
		s.rawCache = newResponseCache(s.cache.capacity)
	}
	s.initServing()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/measure", s.handleMeasure)
	mux.HandleFunc("/v1/compare", s.handleCompare)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/design", s.handleDesign)
	mux.HandleFunc("/v1/speedup", s.handleSpeedup)
	mux.HandleFunc("/v1/simulate/faulty", s.handleSimulateFaulty)
	mux.HandleFunc("/v1/statz", s.handleStatz)
	mux.HandleFunc("/", handleNotFound) // JSON 404s, matching every error path
	return s.wrap(mux)
}

func handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "no such endpoint: "+r.URL.Path)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// MeasureResponse is the /v1/measure payload.
type MeasureResponse struct {
	Profile  profile.Profile `json:"profile"`
	X        float64         `json:"x"`
	HECR     float64         `json:"hecr"`
	WorkRate float64         `json:"work_rate"`
	Mean     float64         `json:"mean"`
	Variance float64         `json:"variance"`
	GeoMean  float64         `json:"geo_mean"`
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	// The cache stores fully rendered bodies keyed on the exact float64
	// values, so a hit serves byte-identical JSON to the miss that filled it
	// — no matter how the query spelled the numbers. The whole path runs on
	// pooled scratch (see measurepath.go): zero allocations on a hit,
	// singleflight-coalesced evaluation on a miss.
	sc := measureScratchPool.Get().(*measureScratch)
	status, body, msg := s.measure(sc, r.URL.RawQuery)
	measureScratchPool.Put(sc)
	if status != http.StatusOK {
		writeError(w, status, msg)
		return
	}
	writeRawJSON(w, http.StatusOK, body)
}

// measureResponse builds the /v1/measure payload for one cluster.
func measureResponse(m model.Params, p profile.Profile) MeasureResponse {
	return MeasureResponse{
		Profile:  p,
		X:        core.X(m, p),
		HECR:     core.HECR(m, p),
		WorkRate: core.WorkRate(m, p),
		Mean:     p.Mean(),
		Variance: p.Variance(),
		GeoMean:  p.GeoMean(),
	}
}

// BatchRequest is the POST /v1/batch body: many profiles evaluated against
// one parameter set.
type BatchRequest struct {
	Profiles [][]float64   `json:"profiles"`
	Params   *model.Params `json:"params,omitempty"`
}

// BatchResponse is the POST /v1/batch payload; Results is indexed like the
// request's Profiles.
type BatchResponse struct {
	Count   int               `json:"count"`
	Results []MeasureResponse `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(req.Profiles) == 0 {
		writeError(w, http.StatusBadRequest, "profiles must be non-empty")
		return
	}
	if len(req.Profiles) > MaxBatchProfiles {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d profiles exceeds the limit of %d; shard across requests", len(req.Profiles), MaxBatchProfiles))
		return
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	if err := m.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	profiles := make([]profile.Profile, len(req.Profiles))
	for i, rhos := range req.Profiles {
		p, err := profile.New(rhos...)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("profiles[%d]: %v", i, err))
			return
		}
		profiles[i] = p
	}
	s.batchRequests.Add(1)
	s.batchProfiles.Add(uint64(len(profiles)))
	// One amortized constant derivation + parallel fan-out for the measures,
	// then the per-profile moments on the same worker pool.
	measures := incr.BatchMeasure(m, profiles, 0)
	results := make([]MeasureResponse, len(profiles))
	parallel.ForEach(0, len(profiles), func(i int) {
		p := profiles[i]
		results[i] = MeasureResponse{
			Profile:  p,
			X:        measures[i].X,
			HECR:     measures[i].HECR,
			WorkRate: measures[i].WorkRate,
			Mean:     p.Mean(),
			Variance: p.Variance(),
			GeoMean:  p.GeoMean(),
		}
	})
	writeJSON(w, http.StatusOK, BatchResponse{Count: len(results), Results: results})
}

// CacheStats is the /v1/statz view of the measure cache. Misses counts
// actual evaluations; Coalesced counts requests that piggybacked on another
// request's in-flight evaluation of the same key (singleflight). Hits and
// Coalesced include the raw-query front layer (broken out in RawHits and
// RawCoalesced): a request resolves at exactly one layer, so Hits + Misses
// + Coalesced equals the measure request count either way.
type CacheStats struct {
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Coalesced    uint64  `json:"coalesced"`
	Evicted      uint64  `json:"evicted"`
	RawHits      uint64  `json:"raw_hits"`
	RawCoalesced uint64  `json:"raw_coalesced"`
	Size         int     `json:"size"`
	Capacity     int     `json:"capacity"`
	Shards       int     `json:"shards"`
	HitRate      float64 `json:"hit_rate"`
}

// BatchStats is the /v1/statz view of the batch endpoint.
type BatchStats struct {
	Requests uint64 `json:"requests"`
	Profiles uint64 `json:"profiles"`
}

// ServingStats is the /v1/statz view of the hardening middleware.
type ServingStats struct {
	Shed             uint64 `json:"shed"`
	Panics           uint64 `json:"panics"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	InFlight         int64  `json:"in_flight"`
	MaxConcurrent    int    `json:"max_concurrent"`
	QueueDepth       int    `json:"queue_depth"`
}

// StatzResponse is the /v1/statz payload.
type StatzResponse struct {
	MeasureCache CacheStats   `json:"measure_cache"`
	Batch        BatchStats   `json:"batch"`
	Serving      ServingStats `json:"serving"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	hits, misses, size, coalesced, evicted := s.cache.statsFull()
	cs := CacheStats{
		Hits: hits, Misses: misses, Coalesced: coalesced, Evicted: evicted,
		Size: size, Capacity: s.cache.capacity, Shards: s.cache.Shards(),
	}
	if s.rawCache != nil {
		rawHits, _, _, rawCoalesced, _ := s.rawCache.statsFull()
		cs.RawHits, cs.RawCoalesced = rawHits, rawCoalesced
		cs.Hits += rawHits
		cs.Coalesced += rawCoalesced
	}
	if total := cs.Hits + cs.Misses + cs.Coalesced; total > 0 {
		cs.HitRate = float64(cs.Hits+cs.Coalesced) / float64(total)
	}
	writeJSON(w, http.StatusOK, StatzResponse{
		MeasureCache: cs,
		Batch: BatchStats{
			Requests: s.batchRequests.Load(),
			Profiles: s.batchProfiles.Load(),
		},
		Serving: ServingStats{
			Shed:             s.shed.Load(),
			Panics:           s.panics.Load(),
			DeadlineExceeded: s.deadlines.Load(),
			InFlight:         s.inFlight.Load(),
			MaxConcurrent:    s.serving.MaxConcurrent,
			QueueDepth:       s.serving.QueueDepth,
		},
	})
}

// CompareResponse is the /v1/compare payload.
type CompareResponse struct {
	P1     MeasureResponse `json:"p1"`
	P2     MeasureResponse `json:"p2"`
	Winner int             `json:"winner"` // 1, 2, or 0 for a tie
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	m, err := s.paramsFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p1, err := profileFromString(r.URL.Query().Get("p1"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "p1: "+err.Error())
		return
	}
	p2, err := profileFromString(r.URL.Query().Get("p2"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "p2: "+err.Error())
		return
	}
	resp := CompareResponse{Winner: 0}
	switch core.Compare(m, p1, p2) {
	case 1:
		resp.Winner = 1
	case -1:
		resp.Winner = 2
	}
	resp.P1 = measureResponse(m, p1)
	resp.P2 = measureResponse(m, p2)
	writeJSON(w, http.StatusOK, resp)
}

// ScheduleRequest is the /v1/schedule body.
type ScheduleRequest struct {
	Profile  []float64     `json:"profile"`
	Lifespan float64       `json:"lifespan"`
	Params   *model.Params `json:"params,omitempty"`
}

// ScheduleResponse is the /v1/schedule payload.
type ScheduleResponse struct {
	TotalWork   float64           `json:"total_work"`
	Allocations []float64         `json:"allocations"`
	Computers   []ScheduleSegment `json:"computers"`
}

// ScheduleSegment summarizes one computer's timeline.
type ScheduleSegment struct {
	Rho       float64 `json:"rho"`
	Work      float64 `json:"work"`
	RecvEnd   float64 `json:"recv_end"`
	BusyEnd   float64 `json:"busy_end"`
	ResultsAt float64 `json:"results_at"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req ScheduleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	p, err := profile.New(req.Profile...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sched, err := schedule.BuildFIFO(m, p, req.Lifespan)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := ScheduleResponse{TotalWork: sched.TotalWork}
	for _, c := range sched.Computers {
		resp.Allocations = append(resp.Allocations, c.Work)
		resp.Computers = append(resp.Computers, ScheduleSegment{
			Rho:       c.Rho,
			Work:      c.Work,
			RecvEnd:   c.Segment(schedule.SegReceive).End,
			BusyEnd:   c.Segment(schedule.SegPack).End,
			ResultsAt: c.ResultsArrive,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// DesignRequest is the /v1/design body.
type DesignRequest struct {
	Catalog []catalog.Tier `json:"catalog"`
	Budget  int            `json:"budget"`
	Params  *model.Params  `json:"params,omitempty"`
}

// DesignResponse is the /v1/design payload.
type DesignResponse struct {
	Counts  []int           `json:"counts"`
	Cost    int             `json:"cost"`
	Profile profile.Profile `json:"profile"`
	X       float64         `json:"x"`
	HECR    float64         `json:"hecr"`
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	var req DesignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	design, err := catalog.Optimize(m, catalog.Catalog(req.Catalog), req.Budget)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DesignResponse{
		Counts:  design.Counts,
		Cost:    design.Cost,
		Profile: design.Profile,
		X:       design.X,
		HECR:    core.HECR(m, design.Profile),
	})
}

// SpeedupResponse is the /v1/speedup payload: which single computer to
// upgrade, per §3 of the paper.
type SpeedupResponse struct {
	Index     int             `json:"index"` // 0-based computer to upgrade
	After     profile.Profile `json:"after"`
	WorkRatio float64         `json:"work_ratio"`
	Mode      string          `json:"mode"` // "additive" or "multiplicative"
}

func (s *Server) handleSpeedup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	m, err := s.paramsFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	p, err := profileFromString(r.URL.Query().Get("profile"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q := r.URL.Query()
	phiStr, psiStr := q.Get("phi"), q.Get("psi")
	var (
		choice core.SpeedupChoice
		mode   string
	)
	switch {
	case phiStr != "" && psiStr != "":
		writeError(w, http.StatusBadRequest, "pass exactly one of phi, psi")
		return
	case phiStr != "":
		phi, perr := strconv.ParseFloat(phiStr, 64)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "bad phi")
			return
		}
		choice, err = core.BestAdditive(m, p, phi)
		mode = "additive"
	case psiStr != "":
		psi, perr := strconv.ParseFloat(psiStr, 64)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "bad psi")
			return
		}
		choice, err = core.BestMultiplicative(m, p, psi)
		mode = "multiplicative"
	default:
		writeError(w, http.StatusBadRequest, "pass one of phi, psi")
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SpeedupResponse{
		Index: choice.Index, After: choice.After, WorkRatio: choice.WorkRatio, Mode: mode,
	})
}

// paramsFromQuery overlays tau/pi/delta query parameters on the defaults.
func (s *Server) paramsFromQuery(r *http.Request) (model.Params, error) {
	m := s.Defaults
	q := r.URL.Query()
	for _, f := range []struct {
		key string
		dst *float64
	}{{"tau", &m.Tau}, {"pi", &m.Pi}, {"delta", &m.Delta}} {
		if v := q.Get(f.key); v != "" {
			parsed, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return m, fmt.Errorf("bad %s: %v", f.key, err)
			}
			*f.dst = parsed
		}
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

func profileFromString(s string) (profile.Profile, error) {
	if s == "" {
		return nil, fmt.Errorf("missing profile")
	}
	parts := strings.Split(s, ",")
	rhos := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ρ-value %q", part)
		}
		rhos = append(rhos, v)
	}
	return profile.New(rhos...)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes a pre-rendered JSON body (already newline-terminated,
// matching json.Encoder output).
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// methodNotAllowed writes the structured 405 used by every route, with the
// Allow header RFC 9110 requires.
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, allow+" only")
}
