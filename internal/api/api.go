// Package api exposes the library over HTTP as a small JSON service — the
// deployment face of the reproduction: a scheduler node (or a curious
// colleague with curl) can ask for cluster measures, optimal schedules, and
// budget designs without linking Go code.
//
// Endpoints (all GET unless noted):
//
//	GET  /v1/measure?profile=1,0.5,0.25[&tau=..&pi=..&delta=..]
//	     → X, HECR, work rate, moments (served through a bounded LRU cache
//	       keyed on the canonicalized params+profile)
//	GET  /v1/compare?p1=..&p2=..            → winner + per-cluster measures
//	POST /v1/batch {profiles, params?}      → measures for many profiles in
//	     one request, evaluated through internal/incr with parallel fan-out
//	POST /v1/schedule {profile, lifespan}   → allocations + timeline
//	POST /v1/design {catalog, budget}       → knapsack-optimal composition
//	GET  /v1/speedup?profile=..&phi=|psi=   → which computer to upgrade (§3)
//	POST /v1/simulate/faulty {profile, lifespan, faults, replan?}
//	     → degraded-work report: salvage, loss, and degradation vs the
//	       fault-free optimum W(L;P), optionally under the replanner
//	GET  /v1/statz                          → cache/batch counters + serving
//	     (shed, panics, deadline) counters
//	GET  /v1/healthz                        → liveness
//
// Parameters default to the paper's Table 1 environment. Every route is
// wrapped in hardening middleware: panic recovery, a bounded admission
// queue that sheds 429 + Retry-After at capacity, and per-request context
// deadlines (see ServingConfig).
package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetero/internal/catalog"
	"hetero/internal/cluster"
	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
)

// DefaultMeasureCacheSize bounds the /v1/measure LRU when NewServer is used.
const DefaultMeasureCacheSize = 1024

// MaxBatchProfiles bounds one POST /v1/batch request; larger workloads
// should shard across requests.
const MaxBatchProfiles = 4096

// Server carries the default environment plus the serving-path state: the
// /v1/measure response cache, the admission-control tokens, and the
// /v1/statz counters.
type Server struct {
	Defaults model.Params
	// Serving tunes the hardening middleware; set it before the first
	// Handler call. The zero value uses the package defaults.
	Serving ServingConfig
	// MaxBody caps every POST request body in bytes (batch, simulate,
	// schedule, design); 0 means DefaultMaxBody. Set it before serving.
	MaxBody int
	// MaxBatchBody is the historical per-endpoint spelling of MaxBody; it
	// applies only when MaxBody is unset.
	//
	// Deprecated: set MaxBody — the caps are unified.
	MaxBatchBody int
	// StreamBatchThreshold is the work-units estimate (incr.WorkUnits: one
	// unit per ρ-value in the batch) at or above which a POST /v1/batch
	// response is streamed with per-fragment flushes instead of buffered.
	// 0 means DefaultStreamBatchThreshold; negative disables streaming.
	// Set it before serving.
	StreamBatchThreshold int

	cache                *responseCache
	rawCache             *responseCache  // raw-query front layer for large queries
	batchRawCache        *responseCache  // raw body-front layer for /v1/batch
	batcher              *measureBatcher // cross-request coalescing admission batcher (nil = off)
	cluster              *cluster.Peers  // fleet cache tier (nil = single-replica)
	spill                *spillTier      // on-disk second-level cache (nil = off)
	measureEvals         atomic.Uint64   // measure-path profile evaluations (inline + flush)
	servedGets           atomic.Uint64   // peer gets answered with cached bytes
	servedGetsSpill      atomic.Uint64   // peer gets answered from the spill tier
	servedGetMisses      atomic.Uint64   // peer gets answered 404 (cold)
	acceptedPuts         atomic.Uint64   // peer puts admitted to a cache layer
	rejectedPuts         atomic.Uint64   // peer puts refused (ownership, framing, key)
	batchRequests        atomic.Uint64
	batchProfiles        atomic.Uint64
	batchProfilesUnknown atomic.Uint64
	batchDeduped         atomic.Uint64
	batchCanonHits       atomic.Uint64
	batchRawHits         atomic.Uint64
	batchStreamed        atomic.Uint64

	faultyRequests    atomic.Uint64
	elasticRequests   atomic.Uint64
	redundantRequests atomic.Uint64
	replanDecisions   atomic.Uint64
	replansAdopted    atomic.Uint64

	serving     ServingConfig // Serving with defaults resolved
	runTokens   chan struct{}
	queueTokens chan struct{}
	shed        atomic.Uint64
	panics      atomic.Uint64
	deadlines   atomic.Uint64
	inFlight    atomic.Int64

	startOnce sync.Once // pins started on first Handler/uptime call
	started   time.Time
}

// NewServer returns a server defaulting to Table 1 parameters with the
// default measure-cache size.
func NewServer() *Server { return NewServerCacheSize(DefaultMeasureCacheSize) }

// NewServerCacheSize returns a server with an explicit /v1/measure cache
// bound; cacheSize ≤ 0 disables response caching. The cache is sharded
// automatically (growing adaptively under contention), coalesces concurrent
// identical misses, and carries the default byte budget.
func NewServerCacheSize(cacheSize int) *Server {
	return NewServerWithCache(CacheConfig{Entries: cacheSize, Coalesce: true, Adaptive: true})
}

// NewServerCacheOpts returns a server with cache control: shards is the
// lock-domain count (0 means automatic, values round down to a power of
// two) and coalesce toggles singleflight miss coalescing. shards = 1 with
// coalesce = false reproduces the historical single-lock cache — the
// baseline configuration cmd/benchserve measures speedups against; that
// baseline also runs without the raw front layers.
func NewServerCacheOpts(cacheSize, shards int, coalesce bool) *Server {
	return NewServerWithCache(CacheConfig{
		Entries: cacheSize, Shards: shards, Coalesce: coalesce, Adaptive: true,
	})
}

// CacheConfig configures every response-cache layer of a Server: the
// canonical /v1/measure cache, its raw-query front, and the /v1/batch raw
// body-front.
type CacheConfig struct {
	// Entries bounds each cache's entry count; ≤ 0 disables caching.
	Entries int
	// MaxBytes bounds each cache's resident bytes, counting len(key) +
	// len(body) per entry. 0 means DefaultCacheBytes; negative means
	// unlimited (entry count still bounds).
	MaxBytes int64
	// Shards fixes the lock-domain count (0 = automatic, values round down
	// to a power of two). An explicit count disables adaptive resizing so
	// the geometry stays exactly as configured.
	Shards int
	// Coalesce toggles singleflight miss coalescing. When off, the raw
	// front layers are disabled too (the historical baseline shape).
	Coalesce bool
	// Adaptive enables contention-adaptive shard growth; only honored with
	// automatic sharding.
	Adaptive bool
}

// NewServerWithCache returns a server with full cache control; the other
// constructors are conveniences over this one.
func NewServerWithCache(cfg CacheConfig) *Server {
	mk := func(entries int) *responseCache {
		maxBytes := cfg.MaxBytes
		if maxBytes == 0 {
			maxBytes = DefaultCacheBytes
		} else if maxBytes < 0 {
			maxBytes = 0 // unlimited
		}
		return newCache(cacheOptions{
			entries:  entries,
			maxBytes: maxBytes,
			shards:   cfg.Shards,
			coalesce: cfg.Coalesce,
			adaptive: cfg.Adaptive && cfg.Shards == 0,
		})
	}
	rawSize := cfg.Entries
	if !cfg.Coalesce {
		rawSize = 0 // historical baseline: canonical cache only
	}
	return &Server{
		Defaults:      model.Table1(),
		cache:         mk(cfg.Entries),
		rawCache:      mk(rawSize),
		batchRawCache: mk(rawSize),
	}
}

// EnableCoalesce starts the cross-request coalescing admission batcher for
// /v1/measure misses (see coalesce.go). Call before serving; off, the miss
// path is byte-for-byte the historical one. Pair with CloseCoalesce on
// shutdown so pending items are flushed and answered.
func (s *Server) EnableCoalesce(cfg CoalesceConfig) {
	if s.batcher != nil {
		s.batcher.Close()
	}
	s.batcher = newMeasureBatcher(s, cfg)
}

// CloseCoalesce drains the admission batcher: new submissions fall back to
// inline evaluation, already-accepted items are flushed and answered. Call
// it after the HTTP server has stopped accepting requests (heterod calls it
// once Shutdown returns). No-op when coalescing is off.
func (s *Server) CloseCoalesce() {
	if s.batcher != nil {
		s.batcher.Close()
	}
}

// Handler returns the HTTP handler with all routes mounted, wrapped in the
// hardening middleware (panic recovery, bounded admission, per-request
// deadlines — see ServingConfig).
func (s *Server) Handler() http.Handler {
	if s.cache == nil { // zero-constructed Server literals keep working
		s.cache = newResponseCache(DefaultMeasureCacheSize)
	}
	if s.rawCache == nil {
		s.rawCache = newResponseCache(s.cache.capacity)
	}
	if s.batchRawCache == nil {
		s.batchRawCache = newResponseCache(s.cache.capacity)
	}
	s.initServing()
	s.markStarted()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/measure", s.handleMeasure)
	mux.HandleFunc("/v1/compare", s.handleCompare)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/design", s.handleDesign)
	mux.HandleFunc("/v1/speedup", s.handleSpeedup)
	mux.HandleFunc("/v1/simulate/faulty", s.handleSimulateFaulty)
	mux.HandleFunc("/v1/simulate/elastic", s.handleSimulateElastic)
	mux.HandleFunc("/v1/statz", s.handleStatz)
	mux.HandleFunc(cluster.PeerGetPath, s.handlePeerGet)
	mux.HandleFunc(cluster.PeerPutPath, s.handlePeerPut)
	mux.HandleFunc("/", handleNotFound) // JSON 404s, matching every error path
	return s.wrap(mux)
}

func handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "no such endpoint: "+r.URL.Path)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// MeasureResponse is the /v1/measure payload.
type MeasureResponse struct {
	Profile  profile.Profile `json:"profile"`
	X        float64         `json:"x"`
	HECR     float64         `json:"hecr"`
	WorkRate float64         `json:"work_rate"`
	Mean     float64         `json:"mean"`
	Variance float64         `json:"variance"`
	GeoMean  float64         `json:"geo_mean"`
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	// The cache stores fully rendered bodies keyed on the exact float64
	// values, so a hit serves byte-identical JSON to the miss that filled it
	// — no matter how the query spelled the numbers. The whole path runs on
	// pooled scratch (see measurepath.go): zero allocations on a hit,
	// singleflight-coalesced evaluation on a miss.
	sc := measureScratchPool.Get().(*measureScratch)
	status, body, msg := s.measure(sc, r.URL.RawQuery)
	measureScratchPool.Put(sc)
	s.drainResizes()
	if status != http.StatusOK {
		writeError(w, status, msg)
		return
	}
	writeRawJSON(w, http.StatusOK, body)
}

// measureResponse builds the /v1/measure payload for one cluster.
func measureResponse(m model.Params, p profile.Profile) MeasureResponse {
	return MeasureResponse{
		Profile:  p,
		X:        core.X(m, p),
		HECR:     core.HECR(m, p),
		WorkRate: core.WorkRate(m, p),
		Mean:     p.Mean(),
		Variance: p.Variance(),
		GeoMean:  p.GeoMean(),
	}
}

// BatchRequest is the POST /v1/batch body: many profiles evaluated against
// one parameter set.
type BatchRequest struct {
	Profiles [][]float64   `json:"profiles"`
	Params   *model.Params `json:"params,omitempty"`
}

// BatchResponse is the POST /v1/batch payload; Results is indexed like the
// request's Profiles.
type BatchResponse struct {
	Count   int               `json:"count"`
	Results []MeasureResponse `json:"results"`
}

// readPostBody reads one POST request body under the Server's unified byte
// cap (MaxBody). The cap applies before any decoding: request *shapes* are
// bounded by the endpoint validators, but a hostile body could carry
// unbounded tokens and balloon decode memory. Over-cap bodies get the
// structured 413 every endpoint shares; ok = false means the response has
// been written.
func (s *Server) readPostBody(w http.ResponseWriter, r *http.Request) (body []byte, ok bool) {
	max := s.maxBody()
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(max)+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return nil, false
	}
	if len(body) > max {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes; shard across requests or raise -max-body", max))
		return nil, false
	}
	return body, true
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := s.readPostBody(w, r)
	if !ok {
		return
	}
	// drainResizes must run however the request ends — including a client
	// disconnect mid-stream — or adaptive shard growth stalls.
	defer s.drainResizes()
	// A body of B bytes decodes to at most ~B/2 ρ-values, so bodies under
	// the work-units threshold in bytes can never stream: they take the
	// buffered engine (raw body-front, dedupe, cacheable assembly) whole.
	if len(body) >= s.streamBatchThreshold() {
		s.serveBatchLarge(w, r, body)
		return
	}
	status, resp, msg := s.BatchBody(body)
	if status != http.StatusOK {
		writeError(w, status, msg)
		return
	}
	writeRawJSON(w, http.StatusOK, resp)
}

// CacheStats is the /v1/statz view of the measure cache. Misses counts
// actual evaluations; Coalesced counts requests that piggybacked on another
// request's in-flight evaluation of the same key (singleflight). Hits and
// Coalesced include the raw-query front layer (broken out in RawHits and
// RawCoalesced): a request resolves at exactly one layer, so Hits + Misses
// + Coalesced equals the measure request count either way.
type CacheStats struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Coalesced    uint64 `json:"coalesced"`
	Evicted      uint64 `json:"evicted"`
	Rejected     uint64 `json:"rejected"` // entries over a shard's whole byte budget
	RawHits      uint64 `json:"raw_hits"`
	RawCoalesced uint64 `json:"raw_coalesced"`
	Size         int    `json:"size"`
	Capacity     int    `json:"capacity"`
	Bytes        int64  `json:"bytes"`     // resident key+body bytes, canonical layer
	RawBytes     int64  `json:"raw_bytes"` // resident bytes, raw-query front layer
	MaxBytes     int64  `json:"max_bytes"` // per-cache byte budget (0 = unlimited)
	Shards       int    `json:"shards"`
	ShardResizes uint64 `json:"shard_resizes"` // contention-adaptive resizes, canonical layer
	// Raw-front layer geometry: adaptive grow/shrink is observable per
	// layer, not just on the canonical cache.
	RawShards       int     `json:"raw_shards"`
	RawShardResizes uint64  `json:"raw_shard_resizes"`
	HitRate         float64 `json:"hit_rate"`
}

// BatchStats is the /v1/statz view of the batch endpoint. Deduped counts
// within-request profiles that collapsed onto a bit-identical earlier entry;
// CacheHits counts batch entries served from the canonical measure cache;
// RawHits counts whole requests served (or coalesced) by the raw body-front
// cache, whose residency RawBytes reports; Streamed counts responses
// rendered through the bounded-memory streaming path. ProfilesUnknown
// counts served requests whose profile count could not be recovered (no
// admission-time meta and no sniffable count prefix) — those requests are
// in Requests but contribute nothing to Profiles, reported explicitly
// instead of silently skewing the ratio.
type BatchStats struct {
	Requests        uint64 `json:"requests"`
	Profiles        uint64 `json:"profiles"`
	ProfilesUnknown uint64 `json:"profiles_unknown"`
	Deduped         uint64 `json:"deduped"`
	CacheHits       uint64 `json:"cache_hits"`
	RawHits         uint64 `json:"raw_hits"`
	RawBytes        int64  `json:"raw_bytes"`
	Streamed        uint64 `json:"streamed"`
	// Body-front layer geometry (shards gauge + resize epoch counter).
	RawShards       int    `json:"raw_shards"`
	RawShardResizes uint64 `json:"raw_shard_resizes"`
}

// CoalesceStats is the /v1/statz view of the admission batcher: how many
// misses it accepted (raw-flavor broken out), how they batched (flushes,
// items, max flush size, distinct profile groups, items that shared a
// group), how many submissions fell back to the inline path, and the
// per-item timing breakdown — QueuedNs sums submit→flush-sealed waits,
// EvalNs sums flush-sealed→answered times, each over Answered items.
type CoalesceStats struct {
	Enabled         bool   `json:"enabled"`
	Submitted       uint64 `json:"submitted"`
	RawSubmitted    uint64 `json:"raw_submitted"`
	Answered        uint64 `json:"answered"`
	Flushes         uint64 `json:"flushes"`
	FlushItems      uint64 `json:"flush_items"`
	MaxFlush        uint64 `json:"max_flush"`
	Groups          uint64 `json:"groups"`
	SharedItems     uint64 `json:"shared_items"`
	InlineFallbacks uint64 `json:"inline_fallbacks"`
	ParseErrors     uint64 `json:"parse_errors"`
	QueuedNs        uint64 `json:"queued_ns"`
	EvalNs          uint64 `json:"eval_ns"`
}

// SimulateStats is the /v1/statz view of the simulation endpoints.
// FaultyRequests and ElasticRequests count validated simulations started on
// each route (RedundantRequests is the elastic subset running a redundancy
// scheme); ReplanDecisions counts ride-vs-replan decision points across
// both routes, ReplansAdopted the ones where the replanner abandoned the
// in-flight round.
type SimulateStats struct {
	FaultyRequests    uint64 `json:"faulty_requests"`
	ElasticRequests   uint64 `json:"elastic_requests"`
	RedundantRequests uint64 `json:"redundant_requests"`
	ReplanDecisions   uint64 `json:"replan_decisions"`
	ReplansAdopted    uint64 `json:"replans_adopted"`
}

// ServingStats is the /v1/statz view of the hardening middleware.
type ServingStats struct {
	Shed             uint64 `json:"shed"`
	Panics           uint64 `json:"panics"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	InFlight         int64  `json:"in_flight"`
	MaxConcurrent    int    `json:"max_concurrent"`
	QueueDepth       int    `json:"queue_depth"`
}

// StatzResponse is the /v1/statz payload. UptimeSeconds and Build identify
// and age one replica of a fleet; Cluster reports the peer cache tier.
type StatzResponse struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	Build         BuildInfo     `json:"build"`
	MeasureCache  CacheStats    `json:"measure_cache"`
	Batch         BatchStats    `json:"batch"`
	Coalesce      CoalesceStats `json:"coalesce"`
	Simulate      SimulateStats `json:"simulate"`
	Cluster       ClusterStats  `json:"cluster"`
	Spill         SpillStats    `json:"spill"`
	Serving       ServingStats  `json:"serving"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	ct := s.cache.counters()
	cs := CacheStats{
		Hits: ct.hits, Misses: ct.misses, Coalesced: ct.coalesced,
		Evicted: ct.evicted, Rejected: ct.rejected,
		Size: ct.size, Capacity: s.cache.capacity,
		Bytes: ct.bytes, MaxBytes: s.cache.maxBytes,
		Shards: ct.shards, ShardResizes: ct.resizes,
	}
	if s.rawCache != nil {
		rt := s.rawCache.counters()
		cs.RawHits, cs.RawCoalesced, cs.RawBytes = rt.hits, rt.coalesced, rt.bytes
		cs.RawShards, cs.RawShardResizes = rt.shards, rt.resizes
		cs.Evicted += rt.evicted
		cs.Rejected += rt.rejected
		cs.Hits += rt.hits
		cs.Coalesced += rt.coalesced
	}
	if total := cs.Hits + cs.Misses + cs.Coalesced; total > 0 {
		cs.HitRate = float64(cs.Hits+cs.Coalesced) / float64(total)
	}
	bs := BatchStats{
		Requests:        s.batchRequests.Load(),
		Profiles:        s.batchProfiles.Load(),
		ProfilesUnknown: s.batchProfilesUnknown.Load(),
		Deduped:         s.batchDeduped.Load(),
		CacheHits:       s.batchCanonHits.Load(),
		RawHits:         s.batchRawHits.Load(),
		Streamed:        s.batchStreamed.Load(),
	}
	if s.batchRawCache != nil {
		bt := s.batchRawCache.counters()
		bs.RawBytes = bt.bytes
		bs.RawShards, bs.RawShardResizes = bt.shards, bt.resizes
	}
	var co CoalesceStats
	if b := s.batcher; b != nil {
		co = CoalesceStats{
			Enabled:         true,
			Submitted:       b.submitted.Load(),
			RawSubmitted:    b.rawSubmits.Load(),
			Answered:        b.answered.Load(),
			Flushes:         b.flushes.Load(),
			FlushItems:      b.flushItems.Load(),
			MaxFlush:        b.maxFlush.Load(),
			Groups:          b.groups.Load(),
			SharedItems:     b.sharedItems.Load(),
			InlineFallbacks: b.fallbacks.Load(),
			ParseErrors:     b.parseErrors.Load(),
			QueuedNs:        b.queuedNs.Load(),
			EvalNs:          b.evalNs.Load(),
		}
	}
	writeJSON(w, http.StatusOK, StatzResponse{
		UptimeSeconds: s.uptime().Seconds(),
		Build:         buildInfo(),
		MeasureCache:  cs,
		Batch:         bs,
		Coalesce:      co,
		Cluster:       s.clusterStats(),
		Spill:         s.spillStats(),
		Simulate: SimulateStats{
			FaultyRequests:    s.faultyRequests.Load(),
			ElasticRequests:   s.elasticRequests.Load(),
			RedundantRequests: s.redundantRequests.Load(),
			ReplanDecisions:   s.replanDecisions.Load(),
			ReplansAdopted:    s.replansAdopted.Load(),
		},
		Serving: ServingStats{
			Shed:             s.shed.Load(),
			Panics:           s.panics.Load(),
			DeadlineExceeded: s.deadlines.Load(),
			InFlight:         s.inFlight.Load(),
			MaxConcurrent:    s.serving.MaxConcurrent,
			QueueDepth:       s.serving.QueueDepth,
		},
	})
}

// CompareResponse is the /v1/compare payload.
type CompareResponse struct {
	P1     MeasureResponse `json:"p1"`
	P2     MeasureResponse `json:"p2"`
	Winner int             `json:"winner"` // 1, 2, or 0 for a tie
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	// Large queries go through the raw front cache (see rawfront.go); small
	// ones render directly.
	s.serveQueryCached(w, compareKeyPrefix, r.URL.RawQuery, s.renderCompare)
}

// ScheduleRequest is the /v1/schedule body.
type ScheduleRequest struct {
	Profile  []float64     `json:"profile"`
	Lifespan float64       `json:"lifespan"`
	Params   *model.Params `json:"params,omitempty"`
}

// ScheduleResponse is the /v1/schedule payload.
type ScheduleResponse struct {
	TotalWork   float64           `json:"total_work"`
	Allocations []float64         `json:"allocations"`
	Computers   []ScheduleSegment `json:"computers"`
}

// ScheduleSegment summarizes one computer's timeline.
type ScheduleSegment struct {
	Rho       float64 `json:"rho"`
	Work      float64 `json:"work"`
	RecvEnd   float64 `json:"recv_end"`
	BusyEnd   float64 `json:"busy_end"`
	ResultsAt float64 `json:"results_at"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := s.readPostBody(w, r)
	if !ok {
		return
	}
	var req ScheduleRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	p, err := profile.New(req.Profile...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sched, err := schedule.BuildFIFO(m, p, req.Lifespan)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := ScheduleResponse{TotalWork: sched.TotalWork}
	for _, c := range sched.Computers {
		resp.Allocations = append(resp.Allocations, c.Work)
		resp.Computers = append(resp.Computers, ScheduleSegment{
			Rho:       c.Rho,
			Work:      c.Work,
			RecvEnd:   c.Segment(schedule.SegReceive).End,
			BusyEnd:   c.Segment(schedule.SegPack).End,
			ResultsAt: c.ResultsArrive,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// DesignRequest is the /v1/design body.
type DesignRequest struct {
	Catalog []catalog.Tier `json:"catalog"`
	Budget  int            `json:"budget"`
	Params  *model.Params  `json:"params,omitempty"`
}

// DesignResponse is the /v1/design payload.
type DesignResponse struct {
	Counts  []int           `json:"counts"`
	Cost    int             `json:"cost"`
	Profile profile.Profile `json:"profile"`
	X       float64         `json:"x"`
	HECR    float64         `json:"hecr"`
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := s.readPostBody(w, r)
	if !ok {
		return
	}
	var req DesignRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	m := s.Defaults
	if req.Params != nil {
		m = *req.Params
	}
	design, err := catalog.Optimize(m, catalog.Catalog(req.Catalog), req.Budget)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, DesignResponse{
		Counts:  design.Counts,
		Cost:    design.Cost,
		Profile: design.Profile,
		X:       design.X,
		HECR:    core.HECR(m, design.Profile),
	})
}

// SpeedupResponse is the /v1/speedup payload: which single computer to
// upgrade, per §3 of the paper.
type SpeedupResponse struct {
	Index     int             `json:"index"` // 0-based computer to upgrade
	After     profile.Profile `json:"after"`
	WorkRatio float64         `json:"work_ratio"`
	Mode      string          `json:"mode"` // "additive" or "multiplicative"
}

func (s *Server) handleSpeedup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	// Large queries go through the raw front cache (see rawfront.go); small
	// ones render directly.
	s.serveQueryCached(w, speedupKeyPrefix, r.URL.RawQuery, s.renderSpeedup)
}

func profileFromString(s string) (profile.Profile, error) {
	if s == "" {
		return nil, fmt.Errorf("missing profile")
	}
	parts := strings.Split(s, ",")
	rhos := make([]float64, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ρ-value %q", part)
		}
		rhos = append(rhos, v)
	}
	return profile.New(rhos...)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeRawJSON writes a pre-rendered JSON body (already newline-terminated,
// matching json.Encoder output).
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// methodNotAllowed writes the structured 405 used by every route, with the
// Allow header RFC 9110 requires.
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, allow+" only")
}
