package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetero/internal/cluster"
	"hetero/internal/spill"
)

// newSpillServer builds a server with deliberately tiny in-memory caches
// (so the working set evicts) backed by a spill store in a temp dir. The
// returned dir lets corruption tests reach the segment files.
func newSpillServer(t *testing.T, maxBytes int64) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := spill.Open(spill.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServerWithCache(CacheConfig{
		Entries: 256, MaxBytes: maxBytes, Shards: 1, Coalesce: true,
	})
	s.EnableSpill(st)
	t.Cleanup(s.CloseSpill)
	return s, dir
}

// waitSpill polls until cond holds, failing after a deadline. The evict
// writer is asynchronous by design (the sink must not block a shard
// lock), so tests synchronize on observable store state.
func waitSpill(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSpillMeasureEvictRoundtrip: canonical measure entries evicted from
// the byte-budget cache must land in the spill tier and serve later
// requests without re-evaluation, then be promoted back into memory.
func TestSpillMeasureEvictRoundtrip(t *testing.T) {
	s, _ := newSpillServer(t, 700) // ~2 resident entries
	const n = 12
	queries := make([]string, n)
	first := make([][]byte, n)
	for i := range queries {
		queries[i] = fmt.Sprintf("profile=1,0.5,0.%03d", i+101)
		status, body := s.MeasureQuery(queries[i])
		if status != 200 {
			t.Fatalf("query %d: status %d", i, status)
		}
		first[i] = body
	}
	evalsWarm := s.MeasureEvals()
	if evalsWarm == 0 {
		t.Fatal("warm pass ran no evaluations")
	}
	// Every eviction the canonical cache reported must reach the store
	// (the queue is far larger than this working set, so no drops).
	waitSpill(t, "evict writes to drain", func() bool {
		ss := s.spillStats()
		return ss.Writes >= s.cache.counters().evicted && ss.DroppedWrites == 0
	})
	if ev := s.cache.counters().evicted; ev == 0 {
		t.Fatal("working set did not overflow the memory cache")
	}

	// The oldest key is long evicted: the re-request must be a spill hit,
	// byte-identical, with zero new evaluations.
	status, body := s.MeasureQuery(queries[0])
	if status != 200 {
		t.Fatalf("re-request status %d", status)
	}
	if !bytes.Equal(body, first[0]) {
		t.Fatalf("spill hit diverged:\n got %q\nwant %q", body, first[0])
	}
	if got := s.MeasureEvals(); got != evalsWarm {
		t.Fatalf("spill hit ran %d new evaluations", got-evalsWarm)
	}
	hits := s.spillStats().Hits
	if hits == 0 {
		t.Fatal("spill hits = 0 after serving an evicted key")
	}

	// Promotion: the hit's fill insert put the body back in memory, so an
	// immediate repeat must not touch the disk tier again.
	if status, body = s.MeasureQuery(queries[0]); status != 200 || !bytes.Equal(body, first[0]) {
		t.Fatalf("promoted repeat: status %d", status)
	}
	if got := s.spillStats().Hits; got != hits {
		t.Fatalf("promoted repeat consulted spill again (hits %d -> %d)", hits, got)
	}
	if got := s.MeasureEvals(); got != evalsWarm {
		t.Fatal("promoted repeat re-evaluated")
	}
}

// TestSpillRawFrontRoundtrip: large raw queries (≥ rawFastPathMinQuery)
// evicted from the raw front must round-trip through disk under the raw
// layer key and serve re-requests with zero parsing or evaluation.
func TestSpillRawFrontRoundtrip(t *testing.T) {
	s, _ := newSpillServer(t, 64<<10)
	mkQuery := func(i int) string {
		var b strings.Builder
		fmt.Fprintf(&b, "profile=1,0.%03d", i+101)
		for j := 0; j < 1200; j++ {
			b.WriteString(",0.5")
		}
		return b.String() // ~4.8KB, over the raw fast-path floor
	}
	const n = 8
	first := make([][]byte, n)
	for i := 0; i < n; i++ {
		status, body := s.MeasureQuery(mkQuery(i))
		if status != 200 {
			t.Fatalf("query %d: status %d", i, status)
		}
		first[i] = body
	}
	evalsWarm := s.MeasureEvals()
	waitSpill(t, "raw evictions to land", func() bool {
		_, ok := s.spillGet(spillLayerRaw, mkQuery(0))
		return ok
	})

	status, body := s.MeasureQuery(mkQuery(0))
	if status != 200 || !bytes.Equal(body, first[0]) {
		t.Fatalf("raw spill hit diverged (status %d)", status)
	}
	if got := s.MeasureEvals(); got != evalsWarm {
		t.Fatalf("raw spill hit ran %d new evaluations", got-evalsWarm)
	}
}

// bigBatchBody returns a /v1/batch JSON body over the raw body-front
// floor, with a distinguishing first profile per seed.
func bigBatchBody(t *testing.T, seed, profiles int) []byte {
	t.Helper()
	req := BatchRequest{Profiles: make([][]float64, profiles)}
	req.Profiles[0] = []float64{1, float64(seed+101) / 1000}
	for i := 1; i < profiles; i++ {
		req.Profiles[i] = []float64{1, 0.5, 0.25}
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) < batchRawMinBody {
		t.Fatalf("test body %d bytes, below the %d front floor", len(body), batchRawMinBody)
	}
	return body
}

// TestSpillBatchBufferedRoundtrip: a buffered batch response evicted from
// the body-front cache must serve the identical bytes from disk, skipping
// decode and render entirely.
func TestSpillBatchBufferedRoundtrip(t *testing.T) {
	s, _ := newSpillServer(t, 128<<10)
	body1 := bigBatchBody(t, 1, 450)
	body2 := bigBatchBody(t, 2, 450)
	status, resp1, msg := s.BatchBody(body1)
	if status != 200 {
		t.Fatalf("first batch: %d %s", status, msg)
	}
	if status, _, msg = s.BatchBody(body2); status != 200 {
		t.Fatalf("second batch: %d %s", status, msg)
	}
	waitSpill(t, "batch front eviction to land", func() bool {
		_, ok := s.spillGet(spillLayerBatch, string(body1))
		return ok
	})
	hits := s.spillStats().Hits
	status, resp, msg := s.BatchBody(body1)
	if status != 200 {
		t.Fatalf("re-request: %d %s", status, msg)
	}
	if !bytes.Equal(resp, resp1) {
		t.Fatal("batch spill hit diverged from the rendered response")
	}
	if got := s.spillStats().Hits; got <= hits {
		t.Fatalf("batch re-request did not hit spill (hits %d -> %d)", hits, got)
	}
}

// TestSpillStreamedBatch: the streaming batch path must tee its response
// into the spill tier on the first pass and serve the second pass
// byte-identically straight from the segment reader; after on-disk
// corruption it must fall back to evaluation with the same bytes.
func TestSpillStreamedBatch(t *testing.T) {
	s, dir := newSpillServer(t, 128<<10)
	body := bigBatchBody(t, 3, 450)
	run := func() []byte {
		var buf bytes.Buffer
		status, msg, err := s.BatchBodyStream(context.Background(), &buf, body)
		if err != nil || status != 200 {
			t.Fatalf("stream: status %d msg %q err %v", status, msg, err)
		}
		return buf.Bytes()
	}

	firstPass := run() // renders and tees: Commit is synchronous
	if w := s.spillStats().Writes; w == 0 {
		t.Fatal("streamed render did not tee into spill")
	}
	hits := s.spillStats().Hits
	if got := run(); !bytes.Equal(got, firstPass) {
		t.Fatal("streamed spill hit diverged from the rendered response")
	}
	if got := s.spillStats().Hits; got <= hits {
		t.Fatalf("second stream did not hit spill (hits %d -> %d)", hits, got)
	}

	// Bit-flip every segment: the CRC pre-verification must turn the
	// stored entry into a miss (never a corrupt byte on the wire) and the
	// path must fall back to rendering the same response.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files to corrupt (err %v)", err)
	}
	for _, p := range segs {
		f, err := os.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		info, err := f.Stat()
		if err != nil {
			t.Fatal(err)
		}
		buf := []byte{0}
		off := info.Size() / 2
		if _, err := f.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
		buf[0] ^= 0xff
		if _, err := f.WriteAt(buf, off); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if got := run(); !bytes.Equal(got, firstPass) {
		t.Fatal("corrupted-spill fallback diverged from the rendered response")
	}
	if c := s.spillStats().Corrupt; c == 0 {
		t.Fatal("corruption was not detected by the CRC check")
	}
}

// TestStatzSpillBlock: /v1/statz must expose the spill tier, off and on.
func TestStatzSpillBlock(t *testing.T) {
	if stz := statzOf(t, NewServer()); stz.Spill.Enabled {
		t.Fatal("spill reported enabled on a plain server")
	}
	s, _ := newSpillServer(t, 700)
	for i := 0; i < 12; i++ {
		if status, _ := s.MeasureQuery(fmt.Sprintf("profile=1,0.5,0.%03d", i+101)); status != 200 {
			t.Fatalf("query %d failed", i)
		}
	}
	waitSpill(t, "statz writes", func() bool { return s.spillStats().Writes > 0 })
	stz := statzOf(t, s)
	if !stz.Spill.Enabled {
		t.Fatal("spill not reported enabled")
	}
	if stz.Spill.Writes == 0 || stz.Spill.Entries == 0 || stz.Spill.Bytes == 0 {
		t.Fatalf("spill statz block empty: %+v", stz.Spill)
	}
	if stz.Spill.MaxBytes == 0 || stz.Spill.MaxIndexBytes == 0 {
		t.Fatalf("spill budgets missing from statz: %+v", stz.Spill)
	}
}

// TestStatzShardGeometry: every cache layer must report its shard count
// and resize epoch so operators can see adaptive geometry per layer.
func TestStatzShardGeometry(t *testing.T) {
	stz := statzOf(t, NewServer())
	if stz.MeasureCache.Shards < 1 {
		t.Fatalf("canonical shards = %d", stz.MeasureCache.Shards)
	}
	if stz.MeasureCache.RawShards < 1 {
		t.Fatalf("raw front shards = %d", stz.MeasureCache.RawShards)
	}
	if stz.Batch.RawShards < 1 {
		t.Fatalf("batch front shards = %d", stz.Batch.RawShards)
	}
	// Fixed geometry pins the gauge exactly and never resizes.
	fixed := statzOf(t, NewServerWithCache(CacheConfig{Entries: 64, Shards: 4, Coalesce: true}))
	if fixed.MeasureCache.Shards != 4 || fixed.MeasureCache.RawShards != 4 || fixed.Batch.RawShards != 4 {
		t.Fatalf("fixed geometry: canonical %d raw %d batch %d, want 4 each",
			fixed.MeasureCache.Shards, fixed.MeasureCache.RawShards, fixed.Batch.RawShards)
	}
	if fixed.MeasureCache.ShardResizes != 0 || fixed.MeasureCache.RawShardResizes != 0 || fixed.Batch.RawShardResizes != 0 {
		t.Fatal("fixed geometry reported resizes")
	}
}

// TestPeerPutBodyCap: the unified MaxBody cap must reject oversized
// /internal/peer/put bodies with a structured 413 before any frame
// parsing, exactly like the public POST endpoints.
func TestPeerPutBodyCap(t *testing.T) {
	s := NewServer()
	s.MaxBody = 64
	w := httptest.NewRecorder()
	body := bytes.Repeat([]byte{'x'}, 200)
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, cluster.PeerPutPath, bytes.NewReader(body)))
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", w.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("want structured error body, got %q (err %v)", w.Body.String(), err)
	}
	if !strings.Contains(e.Error, "64") {
		t.Fatalf("error %q does not name the cap", e.Error)
	}
	// A frame under the cap passes the cap (and fails later, on the
	// cluster-tier check) — the cap is not simply rejecting everything.
	w = httptest.NewRecorder()
	frame := append(append([]byte{cluster.LayerCanonical}, "k"...), '\n')
	frame = append(frame, "body"...)
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodPost, cluster.PeerPutPath, bytes.NewReader(frame)))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("under-cap frame: status %d, want 400 (no cluster tier)", w.Code)
	}
}
