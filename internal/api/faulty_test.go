package api

import (
	"math"
	"testing"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/sim"
)

func TestSimulateFaultyEndpoint(t *testing.T) {
	srv := testServer(t)
	// Empty plan: the endpoint must report zero degradation.
	var rep sim.DegradedReport
	code := postJSON(t, srv.URL+"/v1/simulate/faulty", FaultyRequest{
		Profile: []float64{1, 0.5, 0.25}, Lifespan: 3600,
	}, &rep)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.FaultFree <= 0 || math.Abs(rep.Degradation) > 1e-9 {
		t.Fatalf("empty plan: %+v", rep)
	}
	// A crash degrades; replan mode returns the per-event decision log with
	// O(1) drop pricing, plus the adopted rounds.
	req := FaultyRequest{
		Profile: []float64{1, 0.5, 0.25}, Lifespan: 3600,
		Faults: []fault.Fault{{Kind: fault.Crash, Computer: 2, At: 900}},
		Replan: true,
	}
	if code := postJSON(t, srv.URL+"/v1/simulate/faulty", req, &rep); code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Degradation <= 0 || len(rep.Decisions) != 1 || len(rep.Rounds) < 1 {
		t.Fatalf("crash+replan: %+v", rep)
	}
	if len(rep.Decisions[0].DropPrices) != 1 || rep.Decisions[0].DropPrices[0].Computer != 2 {
		t.Fatalf("drop not priced: %+v", rep.Decisions[0])
	}
	// The endpoint serves exactly what the library computes.
	want, err := sim.SimulateFaulty(nil, model.Table1(), profile.MustNew(1, 0.5, 0.25), 3600,
		fault.Plan{Faults: req.Faults}, true, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Salvaged != want.Salvaged || rep.Lost != want.Lost {
		t.Fatalf("endpoint %+v diverges from library %+v", rep, want)
	}
}

func TestSimulateFaultyPermanentOutageShorthand(t *testing.T) {
	// An outage with "until" omitted is permanent — same salvage as a very
	// long outage, strictly less than fault-free.
	srv := testServer(t)
	var rep sim.DegradedReport
	code := postJSON(t, srv.URL+"/v1/simulate/faulty", FaultyRequest{
		Profile: []float64{1, 0.5}, Lifespan: 1000,
		Faults: []fault.Fault{{Kind: fault.Outage, Computer: 1, At: 10}},
	}, &rep)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if rep.Degradation <= 0 {
		t.Fatalf("permanent outage did not degrade: %+v", rep)
	}
}

func TestDecodeFaultyRequestRejections(t *testing.T) {
	defaults := model.Table1()
	cases := []struct{ name, body string }{
		{"not json", `nope`},
		{"empty profile", `{"profile":[],"lifespan":10}`},
		{"bad rho", `{"profile":[1,2],"lifespan":10}`},
		{"zero lifespan", `{"profile":[1],"lifespan":0}`},
		{"negative lifespan", `{"profile":[1],"lifespan":-5}`},
		{"nan literal", `{"profile":[NaN],"lifespan":10}`},
		{"inf lifespan", `{"profile":[1],"lifespan":1e999}`},
		{"negative fault time", `{"profile":[1],"lifespan":10,"faults":[{"kind":"crash","computer":0,"at":-1}]}`},
		{"fault index range", `{"profile":[1],"lifespan":10,"faults":[{"kind":"crash","computer":3,"at":1}]}`},
		{"unknown kind", `{"profile":[1],"lifespan":10,"faults":[{"kind":"gremlin","computer":0,"at":1}]}`},
		{"inverted window", `{"profile":[1],"lifespan":10,"faults":[{"kind":"outage","computer":0,"at":5,"until":2}]}`},
		{"overlapping outages", `{"profile":[1],"lifespan":10,"faults":[{"kind":"outage","computer":0,"at":1,"until":5},{"kind":"outage","computer":0,"at":3,"until":7}]}`},
		{"bad factor", `{"profile":[1],"lifespan":10,"faults":[{"kind":"slowdown","computer":0,"at":1,"factor":0}]}`},
		{"bad params", `{"profile":[1],"lifespan":10,"params":{"tau":-1,"pi":0,"delta":1}}`},
	}
	for _, tc := range cases {
		if _, _, _, _, _, err := decodeFaultyRequest(defaults, []byte(tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
