package api

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleflightExactlyOnceUnderSkew is the coalescing contract under the
// worst realistic shape: many goroutines, hot-key skew, all missing at
// once. With no eviction (capacity ≫ keyspace), every distinct key must be
// evaluated exactly once — the first generation — no matter how many
// requests raced on it, and every request must receive that generation's
// body (no lost updates). Run under -race via `make test`.
func TestSingleflightExactlyOnceUnderSkew(t *testing.T) {
	const (
		keys       = 32
		goroutines = 32
		iters      = 200
	)
	c := newResponseCacheOpts(1024, 8, true)
	var evals [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Skew: ~3/4 of traffic lands on the first four keys.
				k := (g*31 + i*17) % (4 * keys)
				if k >= keys {
					k %= 4
				}
				key := []byte(fmt.Sprintf("key-%03d", k))
				want := fmt.Sprintf("body-%03d", k)
				h := hashKey(key)
				body, ok := c.lookup(h, key)
				if !ok {
					var coalesced bool
					var err error
					body, coalesced, err = c.fill(h, key, func() ([]byte, error) {
						evals[k].Add(1)
						time.Sleep(time.Millisecond) // widen the coalescing window
						return []byte(want), nil
					})
					_ = coalesced
					if err != nil {
						t.Errorf("fill(%s): %v", key, err)
						return
					}
				}
				if string(body) != want {
					t.Errorf("key %s returned body %q, want %q", key, body, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for k := range evals {
		if n := evals[k].Load(); n != 1 {
			t.Errorf("key %d evaluated %d times, want exactly 1", k, n)
		}
	}
	hits, misses, size, coalesced, evicted := c.statsFull()
	if misses != keys {
		t.Errorf("misses = %d, want %d (one per distinct key)", misses, keys)
	}
	if evicted != 0 {
		t.Errorf("evicted = %d, want 0", evicted)
	}
	if size != keys {
		t.Errorf("size = %d, want %d", size, keys)
	}
	if total := hits + misses + coalesced; total != goroutines*iters {
		t.Errorf("hits(%d)+misses(%d)+coalesced(%d) = %d, want %d requests",
			hits, misses, coalesced, total, goroutines*iters)
	}
}

// TestSingleflightReevaluatesAfterEviction pins the "per key generation"
// half of the exactly-once contract: eviction ends a generation, so the
// next request for the key legitimately evaluates again.
func TestSingleflightReevaluatesAfterEviction(t *testing.T) {
	c := newResponseCacheOpts(1, 1, true)
	var evals atomic.Int64
	get := func(key string) {
		kb := []byte(key)
		h := hashKey(kb)
		if _, ok := c.lookup(h, kb); ok {
			return
		}
		if _, _, err := c.fill(h, kb, func() ([]byte, error) {
			evals.Add(1)
			return []byte(key), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a") // generation 1 of a
	get("b") // evicts a (capacity 1)
	get("a") // generation 2 of a: must evaluate again
	if n := evals.Load(); n != 3 {
		t.Fatalf("evaluations = %d, want 3 (a, b, a-again)", n)
	}
}

// TestShardedCacheConcurrentEvictionBounds hammers a sharded cache with a
// keyspace far over capacity from many goroutines and asserts the
// invariants eviction must preserve under concurrency: the global bound
// holds, counters reconcile with the request count, and a body read back on
// a hit is exactly the body stored for that key — across every shard. Run
// under -race via `make test`.
func TestShardedCacheConcurrentEvictionBounds(t *testing.T) {
	const (
		capacity   = 64
		keyspace   = 512
		goroutines = 16
		iters      = 400
	)
	c := newResponseCacheOpts(capacity, 8, true)
	if c.Shards() != 8 {
		t.Fatalf("shards = %d, want 8", c.Shards())
	}
	var requests atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := (g*7919 + i*613) % keyspace
				key := []byte(fmt.Sprintf("key-%04d", k))
				want := fmt.Sprintf("body-%04d", k)
				h := hashKey(key)
				requests.Add(1)
				body, ok := c.lookup(h, key)
				if !ok {
					var err error
					body, _, err = c.fill(h, key, func() ([]byte, error) {
						return []byte(want), nil
					})
					if err != nil {
						t.Errorf("fill: %v", err)
						return
					}
				}
				if string(body) != want {
					t.Errorf("lost update: key %s returned %q", key, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, size, coalesced, _ := c.statsFull()
	if size > capacity {
		t.Fatalf("cache overflowed its global bound: size %d > capacity %d", size, capacity)
	}
	if total := hits + misses + coalesced; total != requests.Load() {
		t.Fatalf("counters %d+%d+%d do not reconcile with %d requests",
			hits, misses, coalesced, requests.Load())
	}
	// Per-shard bounds, not just the global sum.
	for i := range c.set.shards {
		sh := &c.set.shards[i]
		sh.mu.Lock()
		if sh.order.Len() > sh.capacity {
			t.Errorf("shard %d over its bound: %d > %d", i, sh.order.Len(), sh.capacity)
		}
		if len(sh.flight) != 0 {
			t.Errorf("shard %d leaked %d in-flight entries", i, len(sh.flight))
		}
		sh.mu.Unlock()
	}
}

// TestSingleflightPropagatesErrorsWithoutCaching: a failed evaluation must
// reach every coalesced waiter and leave nothing cached, so the next
// request retries.
func TestSingleflightPropagatesErrorsWithoutCaching(t *testing.T) {
	c := newResponseCacheOpts(16, 1, true)
	key := []byte("k")
	h := hashKey(key)
	const waiters = 8
	started := make(chan struct{})
	release := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.fill(h, key, func() ([]byte, error) {
			close(started)
			<-release
			return nil, fmt.Errorf("boom")
		})
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Errorf("winner error = %v", err)
			return
		}
		failures.Add(1)
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, coalesced, err := c.fill(h, key, func() ([]byte, error) {
				return nil, fmt.Errorf("boom")
			})
			if err == nil {
				t.Error("waiter got nil error")
				return
			}
			_ = coalesced
			failures.Add(1)
		}()
	}
	// Give the waiters a moment to join the flight, then let it fail.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if failures.Load() != waiters+1 {
		t.Fatalf("failures = %d, want %d", failures.Load(), waiters+1)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed evaluation was cached")
	}
}

// TestRawLayerCoalescesLargeQueryHerd drives the full server path with a
// thundering herd of byte-identical large queries and asserts the raw-query
// front layer collapses it to exactly one evaluation: one canonical miss,
// every other request a raw hit or raw coalesced wait. Run under -race via
// `make test`.
func TestRawLayerCoalescesLargeQueryHerd(t *testing.T) {
	const herd = 24
	q := largeTestQuery(1024, 8)
	if len(q) < rawFastPathMinQuery {
		t.Fatal("query too short for the raw layer")
	}
	s := NewServer()
	start := make(chan struct{})
	var wg sync.WaitGroup
	bodies := make([][]byte, herd)
	for g := 0; g < herd; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			status, body := s.MeasureQuery(q)
			if status != 200 {
				t.Errorf("goroutine %d: status %d", g, status)
				return
			}
			bodies[g] = body
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < herd; g++ {
		if string(bodies[g]) != string(bodies[0]) {
			t.Fatalf("goroutine %d received different bytes", g)
		}
	}
	_, canonMisses, _, _, _ := s.cache.statsFull()
	if canonMisses != 1 {
		t.Fatalf("canonical misses = %d, want exactly 1 evaluation for the herd", canonMisses)
	}
	rawHits, rawMisses, _, rawCoalesced, _ := s.rawCache.statsFull()
	if rawMisses != 1 {
		t.Fatalf("raw misses = %d, want 1", rawMisses)
	}
	if rawHits+rawCoalesced != herd-1 {
		t.Fatalf("raw hits(%d)+coalesced(%d) = %d, want %d",
			rawHits, rawCoalesced, rawHits+rawCoalesced, herd-1)
	}
}
