package api

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// CanonicalKey renders a (params, profile) pair as the cache key for
// /v1/measure. Floats are formatted as hexadecimal ('x', -1), which is
// exact and round-trippable: two requests share a key iff every parameter
// and every ρ is the same float64, regardless of how the query spelled them
// ("0.5", "5e-1" and "0.50" all canonicalize identically).
//
// The serving hot path builds the same bytes allocation-free through
// appendCanonicalKey; this wrapper exists for callers that want a string.
func CanonicalKey(m model.Params, p profile.Profile) string {
	return string(appendCanonicalKey(make([]byte, 0, 24*(len(p)+3)), m, p))
}

// appendCanonicalKey appends the canonical key for (m, p) to dst and returns
// the extended slice — the zero-allocation spelling of CanonicalKey used by
// the measure hot path (dst comes from a pooled scratch buffer).
func appendCanonicalKey(dst []byte, m model.Params, p []float64) []byte {
	dst = strconv.AppendFloat(dst, m.Tau, 'x', -1, 64)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, m.Pi, 'x', -1, 64)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, m.Delta, 'x', -1, 64)
	for i, rho := range p {
		if i == 0 {
			dst = append(dst, '|')
		} else {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, rho, 'x', -1, 64)
	}
	return dst
}

// ParseCanonicalKey inverts CanonicalKey, strictly: it accepts exactly the
// image of CanonicalKey on valid inputs and errors on everything else —
// empty or trailing fields ("...|1," or "a||b"), missing profiles,
// non-finite or out-of-range values, and non-canonical float spellings. It
// exists so the fuzzer can prove the key is lossless and unambiguous:
// parse(key(m, p)) must reproduce m and p exactly, and no malformed key may
// parse (let alone panic).
func ParseCanonicalKey(key string) (model.Params, profile.Profile, error) {
	var m model.Params
	rest := key
	for i, dst := range []*float64{&m.Tau, &m.Pi, &m.Delta} {
		field, tail, found := strings.Cut(rest, "|")
		if !found {
			return model.Params{}, nil, fmt.Errorf("api: canonical key %q: fewer than 4 |-fields", key)
		}
		v, err := parseKeyField(field)
		if err != nil {
			return model.Params{}, nil, fmt.Errorf("api: canonical key param %d: %w", i, err)
		}
		*dst = v
		rest = tail
	}
	var rhos []float64
	for {
		field, tail, found := strings.Cut(rest, ",")
		v, err := parseKeyField(field)
		if err != nil {
			return model.Params{}, nil, fmt.Errorf("api: canonical key ρ[%d]: %w", len(rhos), err)
		}
		rhos = append(rhos, v)
		if !found {
			break
		}
		rest = tail
	}
	if err := m.Validate(); err != nil {
		return model.Params{}, nil, fmt.Errorf("api: canonical key params: %w", err)
	}
	p, err := profile.New(rhos...)
	if err != nil {
		return model.Params{}, nil, fmt.Errorf("api: canonical key profile: %w", err)
	}
	// A decodable key must also be in canonical spelling, or two spellings of
	// one cluster could masquerade as distinct keys.
	if CanonicalKey(m, p) != key {
		return model.Params{}, nil, fmt.Errorf("api: key %q is not in canonical form", key)
	}
	return m, p, nil
}

// parseKeyField parses one |- or ,-delimited canonical-key field, rejecting
// the empty fields that trailing or doubled separators produce.
func parseKeyField(field string) (float64, error) {
	if field == "" {
		return 0, fmt.Errorf("empty field (trailing or doubled separator)")
	}
	return strconv.ParseFloat(field, 64)
}

// responseCache is a sharded, bounded LRU over fully rendered JSON responses
// with singleflight miss coalescing. Storing the bytes (not the structs)
// guarantees a hit serves exactly what the miss served.
//
// Keys hash (FNV-1a) to one of a power-of-two number of shards, each with
// its own lock, LRU list and in-flight table, so concurrent requests for
// different keys contend only when they collide on a shard. Small caches
// collapse to one shard, which preserves the exact global-LRU semantics the
// pre-sharding implementation had (and the tests pin).
type responseCache struct {
	shards []cacheShard
	mask   uint64
	// capacity is the global entry bound (the sum of per-shard bounds);
	// ≤ 0 disables caching entirely (every Get is a miss, Put is a no-op,
	// and misses are never coalesced — matching the uncached baseline).
	capacity int
	// coalesce enables singleflight miss coalescing: concurrent fill calls
	// for one key run the compute closure once and share the result. Off in
	// the single-lock baseline configuration benchserve compares against.
	coalesce bool
}

// cacheShard is one lock domain: an LRU bounded to capacity entries plus
// the singleflight table for keys currently being computed.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	flight   map[string]*flightCall

	hits      uint64
	misses    uint64
	coalesced uint64
	evicted   uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// flightCall is one in-progress miss evaluation; waiters block on done and
// then read body/err (written before done is closed).
type flightCall struct {
	done chan struct{}
	body []byte
	err  error
}

const (
	// cacheMinPerShard is the smallest per-shard capacity worth sharding
	// for; below it the cache stays single-sharded so tiny caches keep
	// exact global LRU eviction order.
	cacheMinPerShard = 8
	// cacheMaxShards bounds the automatic shard count (a power of two).
	cacheMaxShards = 16
)

// autoShards picks the shard count for a capacity: the largest power of two
// ≤ capacity/cacheMinPerShard, clamped to [1, cacheMaxShards].
func autoShards(capacity int) int {
	shards := 1
	for shards*2 <= capacity/cacheMinPerShard && shards*2 <= cacheMaxShards {
		shards *= 2
	}
	return shards
}

// newResponseCache returns a cache bounded to capacity entries with the
// automatic shard count and coalescing on; capacity ≤ 0 disables caching.
func newResponseCache(capacity int) *responseCache {
	return newResponseCacheOpts(capacity, 0, true)
}

// newResponseCacheOpts returns a cache with an explicit shard count (0 means
// automatic; other values round down to a power of two) and coalescing
// toggle. shards = 1, coalesce = false reproduces the pre-sharding
// single-lock cache exactly — the baseline configuration for benchserve.
func newResponseCacheOpts(capacity, shards int, coalesce bool) *responseCache {
	if capacity <= 0 {
		// Disabled: one counter-only shard so Stats still works.
		c := &responseCache{capacity: capacity}
		c.shards = make([]cacheShard, 1)
		c.shards[0].init(0)
		return c
	}
	if shards <= 0 {
		shards = autoShards(capacity)
	}
	pow2 := 1
	for pow2*2 <= shards {
		pow2 *= 2
	}
	shards = pow2
	c := &responseCache{
		shards:   make([]cacheShard, shards),
		mask:     uint64(shards - 1),
		capacity: capacity,
		coalesce: coalesce,
	}
	// Distribute the global bound across shards, giving the remainder to the
	// first shards so the per-shard bounds sum exactly to capacity.
	base, rem := capacity/shards, capacity%shards
	for i := range c.shards {
		cap := base
		if i < rem {
			cap++
		}
		if cap < 1 {
			cap = 1
		}
		c.shards[i].init(cap)
	}
	return c
}

func (sh *cacheShard) init(capacity int) {
	sh.capacity = capacity
	sh.order = list.New()
	sh.entries = make(map[string]*list.Element)
	sh.flight = make(map[string]*flightCall)
}

// hashKey is FNV-1a over the key bytes — allocation-free and good enough to
// spread canonical keys (which differ in their float bits) across shards.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// hashString is hashKey over a string — same FNV-1a, no conversion.
func hashString(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (c *responseCache) shard(h uint64) *cacheShard {
	return &c.shards[h&c.mask]
}

// lookup returns the cached body for the key bytes, counting a hit when
// found. Misses are NOT counted here — the fill that follows counts them —
// so the lookup+fill hot path counts each evaluation exactly once. The hit
// path performs no allocation: the map is probed via the compiler's
// string(bytes) lookup optimization.
func (c *responseCache) lookup(h uint64, key []byte) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	sh := c.shard(h)
	sh.mu.Lock()
	el, ok := sh.entries[string(key)]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.hits++
	sh.order.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	sh.mu.Unlock()
	return body, true
}

// lookupStr is lookup for callers that already hold the key as a string —
// the raw-query front layer, whose key is the unparsed RawQuery itself. The
// hit path performs no allocation.
func (c *responseCache) lookupStr(h uint64, key string) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	sh := c.shard(h)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.hits++
	sh.order.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	sh.mu.Unlock()
	return body, true
}

// fillStr is fill for string keys (see lookupStr); identical semantics.
func (c *responseCache) fillStr(h uint64, key string, compute func() ([]byte, error)) (body []byte, coalesced bool, err error) {
	if c.capacity <= 0 {
		sh := &c.shards[0]
		sh.mu.Lock()
		sh.misses++
		sh.mu.Unlock()
		body, err = compute()
		return body, false, err
	}
	sh := c.shard(h)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.hits++
		sh.order.MoveToFront(el)
		body = el.Value.(*cacheEntry).body
		sh.mu.Unlock()
		return body, false, nil
	}
	if c.coalesce {
		if fc, ok := sh.flight[key]; ok {
			sh.coalesced++
			sh.mu.Unlock()
			<-fc.done
			return fc.body, true, fc.err
		}
	}
	sh.misses++
	var fc *flightCall
	if c.coalesce {
		fc = &flightCall{done: make(chan struct{})}
		sh.flight[key] = fc
	}
	sh.mu.Unlock()

	body, err = compute()

	sh.mu.Lock()
	if fc != nil {
		delete(sh.flight, key)
	}
	if err == nil {
		sh.insertLocked(key, body)
	}
	sh.mu.Unlock()
	if fc != nil {
		fc.body, fc.err = body, err
		close(fc.done)
	}
	return body, false, err
}

// fill completes a miss: it re-checks the entry under the shard lock, joins
// an in-flight computation for the same key when coalescing is on, or runs
// compute itself and publishes the result. The returned coalesced flag
// reports that this call waited on another goroutine's evaluation. Errors
// are propagated to every waiter and nothing is cached.
func (c *responseCache) fill(h uint64, key []byte, compute func() ([]byte, error)) (body []byte, coalesced bool, err error) {
	if c.capacity <= 0 {
		sh := &c.shards[0]
		sh.mu.Lock()
		sh.misses++
		sh.mu.Unlock()
		body, err = compute()
		return body, false, err
	}
	sh := c.shard(h)
	sh.mu.Lock()
	// Re-check: another goroutine may have published between our lookup miss
	// and this lock acquisition.
	if el, ok := sh.entries[string(key)]; ok {
		sh.hits++
		sh.order.MoveToFront(el)
		body = el.Value.(*cacheEntry).body
		sh.mu.Unlock()
		return body, false, nil
	}
	if c.coalesce {
		if fc, ok := sh.flight[string(key)]; ok {
			sh.coalesced++
			sh.mu.Unlock()
			<-fc.done
			return fc.body, true, fc.err
		}
	}
	sh.misses++
	var fc *flightCall
	if c.coalesce {
		fc = &flightCall{done: make(chan struct{})}
		sh.flight[string(key)] = fc
	}
	sh.mu.Unlock()

	body, err = compute()

	sh.mu.Lock()
	if fc != nil {
		delete(sh.flight, string(key))
	}
	if err == nil {
		sh.insertLocked(string(key), body)
	}
	sh.mu.Unlock()
	if fc != nil {
		fc.body, fc.err = body, err
		close(fc.done)
	}
	return body, false, err
}

// insertLocked stores body under key in the shard's LRU, evicting from the
// cold end while over the shard bound. Callers hold sh.mu.
func (sh *cacheShard) insertLocked(key string, body []byte) {
	if sh.capacity <= 0 {
		return
	}
	if el, ok := sh.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		sh.order.MoveToFront(el)
		return
	}
	sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, body: body})
	for sh.order.Len() > sh.capacity {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.entries, oldest.Value.(*cacheEntry).key)
		sh.evicted++
	}
}

// Get returns the cached body for key, counting the hit or miss — the
// string-keyed convenience wrapper the tests and non-hot callers use.
func (c *responseCache) Get(key string) ([]byte, bool) {
	kb := []byte(key)
	h := hashKey(kb)
	if body, ok := c.lookup(h, kb); ok {
		return body, true
	}
	sh := c.shard(h)
	sh.mu.Lock()
	sh.misses++
	sh.mu.Unlock()
	return nil, false
}

// Put stores body under key, evicting least recently used entries of the
// key's shard when over its bound.
func (c *responseCache) Put(key string, body []byte) {
	if c.capacity <= 0 {
		return
	}
	sh := c.shard(hashKey([]byte(key)))
	sh.mu.Lock()
	sh.insertLocked(key, body)
	sh.mu.Unlock()
}

// Stats reports the cache counters and current occupancy, summed over
// shards.
func (c *responseCache) Stats() (hits, misses uint64, size, capacity int) {
	hits, misses, size, _, _ = c.statsFull()
	return hits, misses, size, c.capacity
}

// statsFull is Stats plus the sharding-era counters.
func (c *responseCache) statsFull() (hits, misses uint64, size int, coalesced, evicted uint64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		coalesced += sh.coalesced
		evicted += sh.evicted
		size += sh.order.Len()
		sh.mu.Unlock()
	}
	return
}

// Shards reports how many lock domains the cache has (1 when disabled or
// small).
func (c *responseCache) Shards() int { return len(c.shards) }
