package api

import (
	"container/list"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// CanonicalKey renders a (params, profile) pair as the cache key for
// /v1/measure. Floats are formatted as hexadecimal ('x', -1), which is
// exact and round-trippable: two requests share a key iff every parameter
// and every ρ is the same float64, regardless of how the query spelled them
// ("0.5", "5e-1" and "0.50" all canonicalize identically).
//
// The serving hot path builds the same bytes allocation-free through
// appendCanonicalKey; this wrapper exists for callers that want a string.
func CanonicalKey(m model.Params, p profile.Profile) string {
	return string(appendCanonicalKey(make([]byte, 0, 24*(len(p)+3)), m, p))
}

// appendCanonicalParams appends the parameter prefix of the canonical key —
// tau|pi|delta in exact hex spelling, no trailing separator.
func appendCanonicalParams(dst []byte, m model.Params) []byte {
	dst = strconv.AppendFloat(dst, m.Tau, 'x', -1, 64)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, m.Pi, 'x', -1, 64)
	dst = append(dst, '|')
	dst = strconv.AppendFloat(dst, m.Delta, 'x', -1, 64)
	return dst
}

// appendCanonicalProfile appends the profile suffix of the canonical key:
// |ρ,ρ,... in exact hex spelling. It is the profile-dependent (and for large
// profiles dominant) part of the key; the admission batcher renders it once
// per distinct profile in a flush and memcpys it behind each item's
// parameter prefix.
func appendCanonicalProfile(dst []byte, p []float64) []byte {
	for i, rho := range p {
		if i == 0 {
			dst = append(dst, '|')
		} else {
			dst = append(dst, ',')
		}
		dst = strconv.AppendFloat(dst, rho, 'x', -1, 64)
	}
	return dst
}

// appendCanonicalKey appends the canonical key for (m, p) to dst and returns
// the extended slice — the zero-allocation spelling of CanonicalKey used by
// the measure hot path (dst comes from a pooled scratch buffer).
func appendCanonicalKey(dst []byte, m model.Params, p []float64) []byte {
	dst = appendCanonicalParams(dst, m)
	return appendCanonicalProfile(dst, p)
}

// ParseCanonicalKey inverts CanonicalKey, strictly: it accepts exactly the
// image of CanonicalKey on valid inputs and errors on everything else —
// empty or trailing fields ("...|1," or "a||b"), missing profiles,
// non-finite or out-of-range values, and non-canonical float spellings. It
// exists so the fuzzer can prove the key is lossless and unambiguous:
// parse(key(m, p)) must reproduce m and p exactly, and no malformed key may
// parse (let alone panic).
func ParseCanonicalKey(key string) (model.Params, profile.Profile, error) {
	var m model.Params
	rest := key
	for i, dst := range []*float64{&m.Tau, &m.Pi, &m.Delta} {
		field, tail, found := strings.Cut(rest, "|")
		if !found {
			return model.Params{}, nil, fmt.Errorf("api: canonical key %q: fewer than 4 |-fields", key)
		}
		v, err := parseKeyField(field)
		if err != nil {
			return model.Params{}, nil, fmt.Errorf("api: canonical key param %d: %w", i, err)
		}
		*dst = v
		rest = tail
	}
	var rhos []float64
	for {
		field, tail, found := strings.Cut(rest, ",")
		v, err := parseKeyField(field)
		if err != nil {
			return model.Params{}, nil, fmt.Errorf("api: canonical key ρ[%d]: %w", len(rhos), err)
		}
		rhos = append(rhos, v)
		if !found {
			break
		}
		rest = tail
	}
	if err := m.Validate(); err != nil {
		return model.Params{}, nil, fmt.Errorf("api: canonical key params: %w", err)
	}
	p, err := profile.New(rhos...)
	if err != nil {
		return model.Params{}, nil, fmt.Errorf("api: canonical key profile: %w", err)
	}
	// A decodable key must also be in canonical spelling, or two spellings of
	// one cluster could masquerade as distinct keys.
	if CanonicalKey(m, p) != key {
		return model.Params{}, nil, fmt.Errorf("api: key %q is not in canonical form", key)
	}
	return m, p, nil
}

// parseKeyField parses one |- or ,-delimited canonical-key field, rejecting
// the empty fields that trailing or doubled separators produce.
func parseKeyField(field string) (float64, error) {
	if field == "" {
		return 0, fmt.Errorf("empty field (trailing or doubled separator)")
	}
	return strconv.ParseFloat(field, 64)
}

// responseCache is a sharded, doubly bounded LRU over fully rendered JSON
// responses with singleflight miss coalescing. Storing the bytes (not the
// structs) guarantees a hit serves exactly what the miss served.
//
// Two bounds apply simultaneously: an entry-count capacity (the historical
// bound) and a byte budget over the resident cost of every entry, counted
// as len(key) + len(body). Large-n profiles carry keys and bodies of
// hundreds of KB each, so an entry-count bound alone lets a hostile or
// large-n workload pin gigabytes; the byte budget caps residency no matter
// the workload shape. Eviction is LRU from the cold end until both bounds
// hold; a single entry larger than a shard's whole byte budget is rejected
// outright (and counted) rather than admitted to thrash the shard empty.
//
// Keys hash (FNV-1a) to one of a power-of-two number of shards, each with
// its own lock, LRU list and in-flight table, so concurrent requests for
// different keys contend only when they collide on a shard. Small caches
// collapse to one shard, which preserves the exact global-LRU semantics the
// pre-sharding implementation had (and the tests pin).
//
// When adaptive sharding is on, the shard count tracks observed per-shard
// traffic in both directions (powers of two, between the initial geometry
// and adaptiveMaxShards): every operation that takes a shard lock bumps
// that shard's op counter, and a shard absorbing checkEvery operations
// since the last resize check marks the cache for a resize evaluation. A
// window absorbed faster than hotWindow is the contention (grow) signal; a
// slow window is a cold signal, and once no shard has run hot for
// shrinkIdle the evaluation halves the shard count back toward the base
// geometry — so a burst that doubled the lock domains doesn't pin them
// forever. Resizes swap the whole shard set under resizeMu held
// exclusively; every lookup/fill holds resizeMu shared for its full
// duration — including the singleflight compute — so a resize can only run
// when no evaluation is in flight and no flight entry exists. That is what
// makes resize safe with respect to the exactly-once contract: a flight
// table can never be orphaned mid-computation, so no key is ever evaluated
// twice concurrently because of a resize.
type responseCache struct {
	// capacity is the global entry bound (the sum of per-shard bounds);
	// ≤ 0 disables caching entirely (every Get is a miss, Put is a no-op,
	// and misses are never coalesced — matching the uncached baseline).
	capacity int
	// maxBytes is the global byte budget over len(key)+len(body) of the
	// resident entries; ≤ 0 means unlimited (entry count still bounds).
	maxBytes int64
	// coalesce enables singleflight miss coalescing: concurrent fill calls
	// for one key run the compute closure once and share the result. Off in
	// the single-lock baseline configuration benchserve compares against.
	coalesce bool
	// adaptive enables contention-adaptive shard growth; off for caches
	// constructed with an explicit shard count, whose geometry tests pin.
	adaptive bool
	// maxShards bounds adaptive growth; checkEvery is the per-shard op count
	// between resize evaluations (small values in tests force frequent
	// resizes).
	maxShards  int
	checkEvery uint64
	// baseShards is the initial shard count — the floor adaptive shrinking
	// returns to when contention subsides.
	baseShards int
	// hotWindow classifies a checkEvery crossing: absorbed strictly faster
	// than this is contention (grow), slower is cold. shrinkIdle is how long
	// the cache must stay cold (no hot crossing anywhere) before a pending
	// evaluation shrinks. Both are set before traffic flows; tests override
	// them to force either direction deterministically.
	hotWindow  time.Duration
	shrinkIdle time.Duration
	// lastHot is the UnixNano of the most recent hot crossing on any shard;
	// written under a shard lock inside the shared resize epoch, read during
	// the exclusive resize evaluation.
	lastHot atomic.Int64

	// resizeMu is the resize epoch: shared by every cache operation for its
	// full duration, exclusive during a shard-set swap. set is only read
	// with resizeMu held (either mode) and only written with it exclusive.
	resizeMu sync.RWMutex
	set      *shardSet
	// resizePending is set by a hot shard and drained by maybeResize, which
	// callers invoke outside any cache operation (never under resizeMu).
	resizePending atomic.Bool
	// resizes counts completed shard-set swaps; written under resizeMu
	// exclusive, read under shared.
	resizes uint64
	// sink, when set, receives every entry evicted by the byte/entry
	// bounds (the spill tier's evict-to-disk hook). It runs under the
	// shard lock so it must be non-blocking and cheap; written once via
	// setEvictSink before traffic flows, re-applied across resizes.
	sink func(key string, body []byte)
	// wsink, when set, receives every entry at admission time (the spill
	// tier's write-through hook). Same contract as sink: runs under the
	// shard lock, must be non-blocking and cheap; written once via
	// setInsertSink before traffic flows, re-applied across resizes —
	// but only after a migration's re-inserts, so a resize never
	// re-offers the whole resident set to the spill queue.
	wsink func(key string, body []byte)
}

// shardSet is one generation of the cache's lock domains; adaptive resizes
// replace the whole set atomically under resizeMu.
type shardSet struct {
	shards []cacheShard
	mask   uint64
}

// cacheShard is one lock domain: an LRU bounded to capacity entries and
// byteBudget resident bytes, plus the singleflight table for keys currently
// being computed.
type cacheShard struct {
	mu         sync.Mutex
	capacity   int
	byteBudget int64
	bytes      int64
	order      *list.List // front = most recently used; values are *cacheEntry
	entries    map[string]*list.Element
	flight     map[string]*flightCall
	// sink mirrors responseCache.sink into the lock domain so the
	// eviction loop can offer entries without reaching for the cache.
	sink func(key string, body []byte)
	// wsink mirrors responseCache.wsink (the write-through admission
	// hook) into the lock domain for the same reason.
	wsink func(key string, body []byte)

	hits      uint64
	misses    uint64
	coalesced uint64
	evicted   uint64
	rejected  uint64 // entries larger than the shard's whole byte budget
	opsSince  uint64 // ops since the last adaptive resize check
	// windowStart is the UnixNano at which the current op window opened
	// (the first counted op after a reset); hot records that the last
	// window closed faster than hotWindow. Written under sh.mu, read and
	// cleared under resizeMu held exclusively (no shard lock can be held
	// there).
	windowStart int64
	hot         bool
}

type cacheEntry struct {
	key  string
	body []byte
	// meta is an opaque caller-owned value stored with the entry at
	// admission time (the /v1/batch raw front records the profile count
	// here, so a hit never re-parses the body to recover it). Zero for
	// layers that don't use it.
	meta int64
}

// entryCost is the resident byte cost charged against the byte budget.
func entryCost(key string, body []byte) int64 {
	return int64(len(key) + len(body))
}

// flightCall is one in-progress miss evaluation; waiters block on done and
// then read body/meta/err (written before done is closed).
type flightCall struct {
	done chan struct{}
	body []byte
	meta int64
	err  error
}

// DefaultCacheBytes is the default resident-byte budget for each response
// cache when no -cache-bytes is configured: 256 MiB. Large-n profiles carry
// ~25-byte hex floats per ρ in the key and ~18-byte decimals per ρ in the
// body, so the default 1024-entry bound alone could pin multiple GiB; the
// byte budget caps it regardless of entry shape.
const DefaultCacheBytes int64 = 256 << 20

const (
	// cacheMinPerShard is the smallest per-shard capacity worth sharding
	// for; below it the cache stays single-sharded so tiny caches keep
	// exact global LRU eviction order.
	cacheMinPerShard = 8
	// cacheMaxShards bounds the automatic initial shard count (a power of
	// two); adaptive growth may exceed it up to adaptiveMaxShards.
	cacheMaxShards = 16
	// adaptiveMaxShards bounds contention-adaptive shard growth.
	adaptiveMaxShards = 64
	// adaptiveCheckOps is the default per-shard operation count between
	// adaptive resize evaluations: one shard absorbing this much traffic
	// since the last check is the "sustained contention" signal.
	adaptiveCheckOps = 1 << 14
	// adaptiveHotWindow classifies a checkEvery crossing: adaptiveCheckOps
	// ops absorbed by one shard in under a second (≈16k ops/s on one lock)
	// is contention worth splitting; anything slower is background traffic.
	adaptiveHotWindow = time.Second
	// adaptiveShrinkIdle is how long the cache must go without a hot
	// crossing before pending evaluations start halving the shard count
	// back toward the initial geometry.
	adaptiveShrinkIdle = 30 * time.Second
)

// autoShards picks the shard count for a capacity: the largest power of two
// ≤ capacity/cacheMinPerShard, clamped to [1, cacheMaxShards].
func autoShards(capacity int) int {
	shards := 1
	for shards*2 <= capacity/cacheMinPerShard && shards*2 <= cacheMaxShards {
		shards *= 2
	}
	return shards
}

// cacheOptions configures newCache. The zero value of maxBytes means
// unlimited; shards 0 means automatic.
type cacheOptions struct {
	entries  int
	maxBytes int64
	shards   int
	coalesce bool
	adaptive bool
}

// newResponseCache returns a cache bounded to capacity entries and the
// default byte budget, with the automatic shard count, coalescing on, and
// adaptive sharding on; capacity ≤ 0 disables caching.
func newResponseCache(capacity int) *responseCache {
	return newCache(cacheOptions{
		entries:  capacity,
		maxBytes: DefaultCacheBytes,
		coalesce: true,
		adaptive: true,
	})
}

// newResponseCacheOpts returns a cache with an explicit shard count (0 means
// automatic; other values round down to a power of two) and coalescing
// toggle. shards = 1, coalesce = false reproduces the pre-sharding
// single-lock cache exactly — the baseline configuration for benchserve.
// Explicit shard counts disable adaptive resizing so the geometry stays
// pinned.
func newResponseCacheOpts(capacity, shards int, coalesce bool) *responseCache {
	return newCache(cacheOptions{
		entries:  capacity,
		maxBytes: DefaultCacheBytes,
		shards:   shards,
		coalesce: coalesce,
		adaptive: shards == 0,
	})
}

// newCache builds a responseCache from options.
func newCache(o cacheOptions) *responseCache {
	c := &responseCache{
		capacity:   o.entries,
		maxBytes:   o.maxBytes,
		coalesce:   o.coalesce,
		adaptive:   o.adaptive,
		maxShards:  adaptiveMaxShards,
		checkEvery: adaptiveCheckOps,
		hotWindow:  adaptiveHotWindow,
		shrinkIdle: adaptiveShrinkIdle,
	}
	c.lastHot.Store(time.Now().UnixNano())
	if o.entries <= 0 {
		// Disabled: one counter-only shard so Stats still works.
		c.adaptive = false
		c.baseShards = 1
		c.set = newShardSet(0, 0, 1)
		return c
	}
	shards := o.shards
	if shards <= 0 {
		shards = autoShards(o.entries)
	}
	pow2 := 1
	for pow2*2 <= shards {
		pow2 *= 2
	}
	c.baseShards = pow2
	c.set = newShardSet(o.entries, o.maxBytes, pow2)
	return c
}

// newShardSet distributes the global entry and byte bounds across shards,
// giving remainders to the first shards so the per-shard bounds sum exactly
// to the global ones.
func newShardSet(capacity int, maxBytes int64, shards int) *shardSet {
	set := &shardSet{
		shards: make([]cacheShard, shards),
		mask:   uint64(shards - 1),
	}
	base, rem := capacity/shards, capacity%shards
	var byteBase, byteRem int64
	if maxBytes > 0 {
		byteBase, byteRem = maxBytes/int64(shards), maxBytes%int64(shards)
	}
	for i := range set.shards {
		cap := base
		if i < rem {
			cap++
		}
		if cap < 1 && capacity > 0 {
			cap = 1
		}
		budget := byteBase
		if maxBytes > 0 && int64(i) < byteRem {
			budget++
		}
		set.shards[i].init(cap, budget)
	}
	return set
}

func (sh *cacheShard) init(capacity int, byteBudget int64) {
	sh.capacity = capacity
	sh.byteBudget = byteBudget
	sh.order = list.New()
	sh.entries = make(map[string]*list.Element)
	sh.flight = make(map[string]*flightCall)
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	// hashSampleCutoff is the key length above which the shard hash samples
	// the key instead of reading every byte. The hash only picks a shard —
	// entries and flight tables are keyed by the full string, so a collision
	// costs shard balance, never correctness. Large-n canonical keys and raw
	// queries run to hundreds of KB; full FNV-1a over them costs as much as
	// the evaluation they front. The sample covers the head (where canonical
	// keys differ in their parameter prefix), the tail (where sweep queries
	// differ in their trailing parameters), a stride through the middle, and
	// the length.
	hashSampleCutoff = 1024
	hashSampleHead   = 512
	hashSampleTail   = 256
	hashSampleProbes = 16
)

// hashKey hashes the key bytes for shard selection: FNV-1a over the whole
// key up to hashSampleCutoff, a fixed-size head+tail+stride sample beyond
// it. hashKey and hashString must agree on equal content — adaptive resizes
// rehash resident entries through hashString while the hot path arrives
// through hashKey.
func hashKey(key []byte) uint64 {
	n := len(key)
	if n <= hashSampleCutoff {
		h := uint64(fnvOffset64)
		for _, b := range key {
			h ^= uint64(b)
			h *= fnvPrime64
		}
		return h
	}
	h := uint64(fnvOffset64) ^ uint64(n)
	h *= fnvPrime64
	for _, b := range key[:hashSampleHead] {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	for _, b := range key[n-hashSampleTail:] {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	stride := (n - hashSampleHead - hashSampleTail) / hashSampleProbes
	for i := 0; i < hashSampleProbes; i++ {
		h ^= uint64(key[hashSampleHead+i*stride])
		h *= fnvPrime64
	}
	return h
}

// hashString is hashKey over a string — identical sampling, no conversion.
func hashString(key string) uint64 {
	n := len(key)
	if n <= hashSampleCutoff {
		h := uint64(fnvOffset64)
		for i := 0; i < n; i++ {
			h ^= uint64(key[i])
			h *= fnvPrime64
		}
		return h
	}
	h := uint64(fnvOffset64) ^ uint64(n)
	h *= fnvPrime64
	for i := 0; i < hashSampleHead; i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	for i := n - hashSampleTail; i < n; i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	stride := (n - hashSampleHead - hashSampleTail) / hashSampleProbes
	for i := 0; i < hashSampleProbes; i++ {
		h ^= uint64(key[hashSampleHead+i*stride])
		h *= fnvPrime64
	}
	return h
}

// countOpLocked bumps the shard's adaptive-resize op counter; callers hold
// sh.mu. When the shard has absorbed checkEvery ops it flags the cache for
// a resize evaluation (performed later, outside the resize epoch, by
// maybeResize), recording whether the window closed fast enough to count as
// contention. The clock is read twice per window — once opening it, once
// closing — which is once per checkEvery/2 ops, invisible on the hot path.
func (c *responseCache) countOpLocked(sh *cacheShard) {
	if !c.adaptive {
		return
	}
	if sh.opsSince == 0 {
		sh.windowStart = time.Now().UnixNano()
	}
	sh.opsSince++
	if sh.opsSince >= c.checkEvery {
		sh.opsSince = 0
		now := time.Now().UnixNano()
		if now-sh.windowStart < int64(c.hotWindow) {
			sh.hot = true
			c.lastHot.Store(now)
		}
		c.resizePending.Store(true)
	}
}

// resizeNeeded reports whether a resize evaluation is pending — one atomic
// load, cheap enough for the zero-allocation hot path to poll.
func (c *responseCache) resizeNeeded() bool {
	return c.adaptive && c.resizePending.Load()
}

// maybeResize evaluates a pending adaptive resize and performs it. It must
// be called OUTSIDE any cache operation (never while the caller holds the
// shared resize epoch), because it takes resizeMu exclusively. A hot shard
// (a checkEvery window absorbed inside hotWindow) doubles the shard count
// while per-shard entry capacity stays at least cacheMinPerShard and the
// count stays under maxShards; an evaluation with no hot shard — traffic
// still flows, just slowly — halves the count back toward baseShards once
// the whole cache has been cold for shrinkIdle. Either way entries migrate
// cold-to-hot so per-shard recency survives, and counters carry over.
// Because every fill holds the epoch shared across its compute, the flight
// tables are provably empty here — no in-flight evaluation can be orphaned,
// so a resize can never cause a key to be evaluated twice.
func (c *responseCache) maybeResize() {
	// Load before CAS keeps the common no-resize poll read-only.
	if !c.adaptive || !c.resizePending.Load() || !c.resizePending.CompareAndSwap(true, false) {
		return
	}
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	old := c.set
	n := len(old.shards)
	hot := false
	for i := range old.shards {
		if old.shards[i].hot {
			hot = true
			old.shards[i].hot = false
		}
	}
	if hot {
		if 2*n > c.maxShards || c.capacity/(2*n) < cacheMinPerShard {
			return
		}
		c.set = c.migrate(old, 2*n)
		c.resizes++
		return
	}
	if n <= c.baseShards {
		return
	}
	if time.Now().UnixNano()-c.lastHot.Load() < int64(c.shrinkIdle) {
		return
	}
	c.set = c.migrate(old, n/2)
	c.resizes++
}

// migrate rebuilds the shard set at a new shard count, rehashing every
// resident entry (cold-to-hot per source shard, so recency is preserved
// within each destination) and folding the old counters into the new
// shards. Callers hold resizeMu exclusively, which guarantees every flight
// table is empty and no shard lock is held.
func (c *responseCache) migrate(old *shardSet, shards int) *shardSet {
	set := newShardSet(c.capacity, c.maxBytes, shards)
	for i := range set.shards {
		set.shards[i].sink = c.sink
	}
	for i := range old.shards {
		osh := &old.shards[i]
		for el := osh.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			dst := &set.shards[hashString(e.key)&set.mask]
			dst.insertLocked(e.key, e.body, e.meta)
		}
		// Counters are reported as sums over shards; folding each source
		// shard into its index-aligned destination keeps them exact.
		dst := &set.shards[uint64(i)&set.mask]
		dst.hits += osh.hits
		dst.misses += osh.misses
		dst.coalesced += osh.coalesced
		dst.evicted += osh.evicted
		dst.rejected += osh.rejected
	}
	// Install the write-through sink only after the re-inserts above so a
	// shard-count change doesn't replay the whole resident set into the
	// spill queue (it is already on disk or on its way there).
	for i := range set.shards {
		set.shards[i].wsink = c.wsink
	}
	return set
}

func (c *responseCache) shard(h uint64) *cacheShard {
	set := c.set
	return &set.shards[h&set.mask]
}

// lookup returns the cached body for the key bytes, counting a hit when
// found. Misses are NOT counted here — the fill that follows counts them —
// so the lookup+fill hot path counts each evaluation exactly once. The hit
// path performs no allocation: the map is probed via the compiler's
// string(bytes) lookup optimization.
func (c *responseCache) lookup(h uint64, key []byte) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	sh := c.shard(h)
	sh.mu.Lock()
	el, ok := sh.entries[string(key)]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.hits++
	c.countOpLocked(sh)
	sh.order.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	sh.mu.Unlock()
	return body, true
}

// lookupStr is lookup for callers that already hold the key as a string —
// the raw-query front layer, whose key is the unparsed RawQuery itself. The
// hit path performs no allocation.
func (c *responseCache) lookupStr(h uint64, key string) ([]byte, bool) {
	if c.capacity <= 0 {
		return nil, false
	}
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	sh := c.shard(h)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	sh.hits++
	c.countOpLocked(sh)
	sh.order.MoveToFront(el)
	body := el.Value.(*cacheEntry).body
	sh.mu.Unlock()
	return body, true
}

// fillStr is fill for string keys (see lookupStr); identical semantics.
func (c *responseCache) fillStr(h uint64, key string, compute func() ([]byte, error)) (body []byte, coalesced bool, err error) {
	body, _, coalesced, err = c.fillStrMeta(h, key, func() ([]byte, int64, error) {
		b, err := compute()
		return b, 0, err
	})
	return body, coalesced, err
}

// lookupStrMeta is lookupStr returning the admission-time meta value stored
// with the entry alongside the body.
func (c *responseCache) lookupStrMeta(h uint64, key string) ([]byte, int64, bool) {
	if c.capacity <= 0 {
		return nil, 0, false
	}
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	sh := c.shard(h)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if !ok {
		sh.mu.Unlock()
		return nil, 0, false
	}
	sh.hits++
	c.countOpLocked(sh)
	sh.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	body, meta := e.body, e.meta
	sh.mu.Unlock()
	return body, meta, true
}

// fillStrMeta is the string-keyed fill core: compute returns the body plus
// an opaque meta value stored with the entry and handed back to every hit,
// waiter, and the computing caller — so derived facts (the batch raw front's
// profile count) survive without re-parsing cached bytes.
func (c *responseCache) fillStrMeta(h uint64, key string, compute func() ([]byte, int64, error)) (body []byte, meta int64, coalesced bool, err error) {
	if c.capacity <= 0 {
		sh := &c.set.shards[0]
		sh.mu.Lock()
		sh.misses++
		sh.mu.Unlock()
		body, meta, err = compute()
		return body, meta, false, err
	}
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	sh := c.shard(h)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		sh.hits++
		c.countOpLocked(sh)
		sh.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		body, meta = e.body, e.meta
		sh.mu.Unlock()
		return body, meta, false, nil
	}
	if c.coalesce {
		if fc, ok := sh.flight[key]; ok {
			sh.coalesced++
			c.countOpLocked(sh)
			sh.mu.Unlock()
			<-fc.done
			return fc.body, fc.meta, true, fc.err
		}
	}
	sh.misses++
	c.countOpLocked(sh)
	var fc *flightCall
	if c.coalesce {
		fc = &flightCall{done: make(chan struct{})}
		sh.flight[key] = fc
	}
	sh.mu.Unlock()

	body, meta, err = compute()

	sh.mu.Lock()
	if fc != nil {
		delete(sh.flight, key)
	}
	if err == nil {
		sh.insertLocked(key, body, meta)
	}
	sh.mu.Unlock()
	if fc != nil {
		fc.body, fc.meta, fc.err = body, meta, err
		close(fc.done)
	}
	return body, meta, false, err
}

// fill completes a miss: it re-checks the entry under the shard lock, joins
// an in-flight computation for the same key when coalescing is on, or runs
// compute itself and publishes the result. The returned coalesced flag
// reports that this call waited on another goroutine's evaluation. Errors
// are propagated to every waiter and nothing is cached. The whole call —
// including compute — runs inside the shared resize epoch, so an adaptive
// resize can never interleave with an in-flight evaluation.
func (c *responseCache) fill(h uint64, key []byte, compute func() ([]byte, error)) (body []byte, coalesced bool, err error) {
	if c.capacity <= 0 {
		sh := &c.set.shards[0]
		sh.mu.Lock()
		sh.misses++
		sh.mu.Unlock()
		body, err = compute()
		return body, false, err
	}
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	sh := c.shard(h)
	sh.mu.Lock()
	// Re-check: another goroutine may have published between our lookup miss
	// and this lock acquisition.
	if el, ok := sh.entries[string(key)]; ok {
		sh.hits++
		c.countOpLocked(sh)
		sh.order.MoveToFront(el)
		body = el.Value.(*cacheEntry).body
		sh.mu.Unlock()
		return body, false, nil
	}
	if c.coalesce {
		if fc, ok := sh.flight[string(key)]; ok {
			sh.coalesced++
			c.countOpLocked(sh)
			sh.mu.Unlock()
			<-fc.done
			return fc.body, true, fc.err
		}
	}
	sh.misses++
	c.countOpLocked(sh)
	var fc *flightCall
	if c.coalesce {
		fc = &flightCall{done: make(chan struct{})}
		sh.flight[string(key)] = fc
	}
	sh.mu.Unlock()

	body, err = compute()

	sh.mu.Lock()
	if fc != nil {
		delete(sh.flight, string(key))
	}
	if err == nil {
		sh.insertLocked(string(key), body, 0)
	}
	sh.mu.Unlock()
	if fc != nil {
		fc.body, fc.err = body, err
		close(fc.done)
	}
	return body, false, err
}

// insertLocked stores body (and its admission-time meta value) under key in
// the shard's LRU, maintaining the resident-bytes account and evicting from
// the cold end while either the entry bound or the byte budget is exceeded.
// An entry whose own cost exceeds the shard's whole byte budget is rejected
// (and any stale entry under the key removed) instead of admitted to evict
// everything else. Callers hold sh.mu.
func (sh *cacheShard) insertLocked(key string, body []byte, meta int64) {
	if sh.capacity <= 0 {
		return
	}
	cost := entryCost(key, body)
	if sh.byteBudget > 0 && cost > sh.byteBudget {
		if el, ok := sh.entries[key]; ok {
			sh.removeLocked(el)
		}
		sh.rejected++
		return
	}
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		sh.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		e.meta = meta
		sh.order.MoveToFront(el)
	} else {
		sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, body: body, meta: meta})
		sh.bytes += cost
	}
	if sh.wsink != nil {
		sh.wsink(key, body)
	}
	for sh.order.Len() > sh.capacity || (sh.byteBudget > 0 && sh.bytes > sh.byteBudget) {
		oldest := sh.order.Back()
		if oldest == nil {
			break
		}
		if sh.sink != nil {
			e := oldest.Value.(*cacheEntry)
			sh.sink(e.key, e.body)
		}
		sh.removeLocked(oldest)
		sh.evicted++
	}
}

// removeLocked drops one entry from the LRU, map and bytes account.
// Callers hold sh.mu.
func (sh *cacheShard) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	sh.order.Remove(el)
	delete(sh.entries, e.key)
	sh.bytes -= entryCost(e.key, e.body)
}

// Get returns the cached body for key, counting the hit or miss — the
// string-keyed convenience wrapper the tests and non-hot callers use.
func (c *responseCache) Get(key string) ([]byte, bool) {
	kb := []byte(key)
	h := hashKey(kb)
	if body, ok := c.lookup(h, kb); ok {
		return body, true
	}
	c.resizeMu.RLock()
	sh := c.shard(h)
	sh.mu.Lock()
	sh.misses++
	c.countOpLocked(sh)
	sh.mu.Unlock()
	c.resizeMu.RUnlock()
	c.maybeResize()
	return nil, false
}

// Put stores body under key, evicting least recently used entries of the
// key's shard while over either bound.
func (c *responseCache) Put(key string, body []byte) {
	if c.capacity <= 0 {
		return
	}
	c.resizeMu.RLock()
	sh := c.shard(hashKey([]byte(key)))
	sh.mu.Lock()
	sh.insertLocked(key, body, 0)
	c.countOpLocked(sh)
	sh.mu.Unlock()
	c.resizeMu.RUnlock()
	c.maybeResize()
}

// cacheCounters is the full statistics snapshot of a cache, summed over
// shards.
type cacheCounters struct {
	hits      uint64
	misses    uint64
	coalesced uint64
	evicted   uint64
	rejected  uint64
	size      int
	bytes     int64
	shards    int
	resizes   uint64
}

// counters snapshots every counter, the occupancy (entries and resident
// bytes), and the sharding geometry.
func (c *responseCache) counters() cacheCounters {
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	set := c.set
	out := cacheCounters{shards: len(set.shards), resizes: c.resizes}
	for i := range set.shards {
		sh := &set.shards[i]
		sh.mu.Lock()
		out.hits += sh.hits
		out.misses += sh.misses
		out.coalesced += sh.coalesced
		out.evicted += sh.evicted
		out.rejected += sh.rejected
		out.size += sh.order.Len()
		out.bytes += sh.bytes
		sh.mu.Unlock()
	}
	return out
}

// Stats reports the cache counters and current occupancy, summed over
// shards.
func (c *responseCache) Stats() (hits, misses uint64, size, capacity int) {
	ct := c.counters()
	return ct.hits, ct.misses, ct.size, c.capacity
}

// statsFull is Stats plus the sharding-era counters — the historical tuple
// shape several tests consume.
func (c *responseCache) statsFull() (hits, misses uint64, size int, coalesced, evicted uint64) {
	ct := c.counters()
	return ct.hits, ct.misses, ct.size, ct.coalesced, ct.evicted
}

// setEvictSink installs fn as the eviction sink on every current shard
// and records it for future resizes. fn runs under a shard lock: it must
// be non-blocking (the spill tier hands off to a bounded queue). Install
// before traffic flows.
func (c *responseCache) setEvictSink(fn func(key string, body []byte)) {
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	c.sink = fn
	for i := range c.set.shards {
		c.set.shards[i].sink = fn
	}
}

// setInsertSink installs fn as the write-through admission sink on every
// current shard and records it for future resizes. Same contract as
// setEvictSink: fn runs under a shard lock and must be non-blocking (the
// spill tier hands off to a bounded queue). Install before traffic flows.
func (c *responseCache) setInsertSink(fn func(key string, body []byte)) {
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	c.wsink = fn
	for i := range c.set.shards {
		c.set.shards[i].wsink = fn
	}
}

// forEachEntry visits every resident entry, hot-to-cold within each shard,
// until fn returns false. fn runs under the visited shard's lock: it must
// not call back into the cache and must not block — callers that need to do
// real work (the shutdown flush) snapshot references inside fn and process
// them after forEachEntry returns. Bodies are immutable once admitted, so
// holding the references afterwards is safe.
func (c *responseCache) forEachEntry(fn func(key string, body []byte) bool) {
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	for i := range c.set.shards {
		sh := &c.set.shards[i]
		sh.mu.Lock()
		for el := sh.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*cacheEntry)
			if !fn(e.key, e.body) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// Shards reports how many lock domains the cache has (1 when disabled or
// small); under adaptive sharding the count grows and shrinks with observed
// contention over the cache's lifetime.
func (c *responseCache) Shards() int {
	c.resizeMu.RLock()
	defer c.resizeMu.RUnlock()
	return len(c.set.shards)
}
