package api

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"hetero/internal/model"
	"hetero/internal/profile"
)

// CanonicalKey renders a (params, profile) pair as the cache key for
// /v1/measure. Floats are formatted as hexadecimal ('x', -1), which is
// exact and round-trippable: two requests share a key iff every parameter
// and every ρ is the same float64, regardless of how the query spelled them
// ("0.5", "5e-1" and "0.50" all canonicalize identically).
func CanonicalKey(m model.Params, p profile.Profile) string {
	var b strings.Builder
	b.Grow(24 * (len(p) + 3))
	b.WriteString(strconv.FormatFloat(m.Tau, 'x', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(m.Pi, 'x', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(m.Delta, 'x', -1, 64))
	for i, rho := range p {
		if i == 0 {
			b.WriteByte('|')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(rho, 'x', -1, 64))
	}
	return b.String()
}

// ParseCanonicalKey inverts CanonicalKey. It exists so the fuzzer can prove
// the key is lossless: parse(key(m, p)) must reproduce m and p exactly.
func ParseCanonicalKey(key string) (model.Params, profile.Profile, error) {
	parts := strings.SplitN(key, "|", 4)
	if len(parts) < 3 {
		return model.Params{}, nil, strconv.ErrSyntax
	}
	var m model.Params
	for i, dst := range []*float64{&m.Tau, &m.Pi, &m.Delta} {
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil {
			return model.Params{}, nil, err
		}
		*dst = v
	}
	var p profile.Profile
	if len(parts) == 4 {
		for _, field := range strings.Split(parts[3], ",") {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return model.Params{}, nil, err
			}
			p = append(p, v)
		}
	}
	return m, p, nil
}

// responseCache is a bounded, mutex-guarded LRU over fully rendered JSON
// responses. Storing the bytes (not the structs) guarantees a hit serves
// exactly what the miss served.
type responseCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// newResponseCache returns a cache bounded to capacity entries; capacity
// ≤ 0 disables caching (every Get is a miss and Put is a no-op).
func newResponseCache(capacity int) *responseCache {
	return &responseCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the cached body for key, counting the hit or miss.
func (c *responseCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry when
// over capacity.
func (c *responseCache) Put(key string, body []byte) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Stats reports the cache counters and current occupancy.
func (c *responseCache) Stats() (hits, misses uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len(), c.capacity
}
