package adaptive

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func baseConfig() Config {
	return Config{
		Params:        model.Table1(),
		True:          profile.MustNew(1, 0.5, 0.25, 0.125),
		Rounds:        6,
		RoundLifespan: 500,
		Alpha:         1,
		Seed:          42,
	}
}

func TestNoiselessConvergesInOneRound(t *testing.T) {
	// Busy time is exactly B·ρ·w, so with α = 1 the estimates are perfect
	// after the first round and efficiency is 1 from round 2 on.
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].MaxRelErr < 0.5 {
		t.Fatalf("round 1 should start badly wrong (homogeneous prior): %v", res.Rounds[0].MaxRelErr)
	}
	for _, r := range res.Rounds[1:] {
		if r.MaxRelErr > 1e-9 {
			t.Fatalf("round %d error %v; should be exact after one observation", r.Round, r.MaxRelErr)
		}
		if math.Abs(r.Efficiency-1) > 1e-9 {
			t.Fatalf("round %d efficiency %v, want 1", r.Round, r.Efficiency)
		}
		if math.Abs(r.MakespanOverrun) > 1e-9 {
			t.Fatalf("round %d overrun %v, want 0", r.Round, r.MakespanOverrun)
		}
	}
	for i, e := range res.Estimates {
		if math.Abs(e-res.Config.True[i]) > 1e-12 {
			t.Fatalf("final estimate %d = %v, want %v", i, e, res.Config.True[i])
		}
	}
}

func TestFirstRoundUnderperforms(t *testing.T) {
	// The homogeneous prior misallocates; round 1 must lose real work
	// against the oracle on a strongly heterogeneous cluster.
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds[0].Efficiency > 0.999 {
		t.Fatalf("round 1 efficiency %v suspiciously perfect", res.Rounds[0].Efficiency)
	}
	if res.Rounds[0].Efficiency <= 0 {
		t.Fatalf("round 1 efficiency %v nonsensical", res.Rounds[0].Efficiency)
	}
}

func TestJitterCreatesErrorFloor(t *testing.T) {
	cfg := baseConfig()
	cfg.Jitter = 0.1
	cfg.Rounds = 12
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Errors can never settle below the fluctuation scale…
	late := res.Rounds[len(res.Rounds)-1]
	if late.MaxRelErr > 0.5 {
		t.Fatalf("late error %v did not come down", late.MaxRelErr)
	}
	if late.MaxRelErr < 1e-6 {
		t.Fatalf("late error %v below the jitter floor; fluctuations should persist", late.MaxRelErr)
	}
	// …and efficiency stays high but imperfect.
	if late.Efficiency < 0.5 || late.Efficiency > 1+1e-9 {
		t.Fatalf("late efficiency %v out of band", late.Efficiency)
	}
}

func TestSmoothingDampsJitterNoise(t *testing.T) {
	// With fluctuating speeds, a damped estimator (α = 0.3) should track
	// the TRUE mean speeds more closely than the trust-everything α = 1
	// estimator, on average over late rounds.
	lateErr := func(alpha float64) float64 {
		cfg := baseConfig()
		cfg.Jitter = 0.15
		cfg.Alpha = alpha
		cfg.Rounds = 20
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		count := 0
		for _, r := range res.Rounds[10:] {
			sum += r.MeanRelErr
			count++
		}
		return sum / float64(count)
	}
	damped := lateErr(0.3)
	eager := lateErr(1)
	if !(damped < eager) {
		t.Fatalf("smoothing did not help under jitter: α=0.3 err %v vs α=1 err %v", damped, eager)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := baseConfig()
	cfg.Jitter = 0.2
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rounds {
		if a.Rounds[i] != b.Rounds[i] {
			t.Fatalf("round %d differs across identical runs", i+1)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.True = nil },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.RoundLifespan = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.Jitter = -0.1 },
		func(c *Config) { c.Jitter = 1 },
		func(c *Config) { c.InitialGuess = -1 },
		func(c *Config) { c.Params = model.Params{} },
	}
	for i, mutate := range cases {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestInitialGuessHonored(t *testing.T) {
	cfg := baseConfig()
	cfg.True = profile.MustNew(0.3, 0.3)
	cfg.InitialGuess = 0.3
	cfg.Rounds = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A perfect prior means a perfect first round.
	if res.Rounds[0].MaxRelErr > 1e-12 || math.Abs(res.Rounds[0].Efficiency-1) > 1e-9 {
		t.Fatalf("perfect prior round: %+v", res.Rounds[0])
	}
}
