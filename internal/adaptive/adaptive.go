// Package adaptive closes the loop the paper leaves open for deployments:
// the optimal FIFO allocations require the heterogeneity profile, but a
// real server does not know its volunteers' speeds. This package learns
// them online across repeated CEP rounds:
//
//  1. allocate each round's work from the current speed estimates
//     (round 1 assumes a homogeneous cluster);
//  2. execute the round on the discrete-event simulator against the TRUE
//     (optionally fluctuating) speeds;
//  3. observe each computer's busy time — in the model it is exactly
//     B·ρ·w, so busy/(B·w) is an unbiased per-round speed sample;
//  4. fold the sample into the estimate by exponential smoothing and go
//     again.
//
// With stable true speeds one observation suffices (the model is
// deterministic); with per-round fluctuation the smoothing factor trades
// tracking speed against noise, and the study quantifies the resulting
// efficiency loss relative to an oracle that knows each round's speeds.
package adaptive

import (
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

// Config parameterizes an adaptive run.
type Config struct {
	Params model.Params
	// True is the cluster's actual heterogeneity profile.
	True profile.Profile
	// Rounds is how many CEP rounds to run.
	Rounds int
	// RoundLifespan is each round's lifespan L.
	RoundLifespan float64
	// Alpha is the exponential smoothing factor in (0,1]: 1 = trust the
	// newest observation entirely.
	Alpha float64
	// Jitter, if positive, fluctuates each round's effective speeds by
	// ±Jitter around the true profile (fresh draw per round).
	Jitter float64
	// InitialGuess seeds every estimate (0 selects 1, the slowest
	// normalized speed — the conservative prior).
	InitialGuess float64
	// Seed drives the per-round jitter draws.
	Seed uint64
}

func (c Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if len(c.True) == 0 {
		return fmt.Errorf("adaptive: empty true profile")
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("adaptive: rounds = %d must be positive", c.Rounds)
	}
	if !(c.RoundLifespan > 0) {
		return fmt.Errorf("adaptive: round lifespan %v must be positive", c.RoundLifespan)
	}
	if !(c.Alpha > 0) || c.Alpha > 1 {
		return fmt.Errorf("adaptive: smoothing α = %v outside (0,1]", c.Alpha)
	}
	if c.Jitter < 0 || c.Jitter >= 1 {
		return fmt.Errorf("adaptive: jitter %v outside [0,1)", c.Jitter)
	}
	if c.InitialGuess < 0 {
		return fmt.Errorf("adaptive: initial guess %v must be non-negative", c.InitialGuess)
	}
	return nil
}

// RoundStats summarizes one adaptive round.
type RoundStats struct {
	Round int
	// MaxRelErr and MeanRelErr measure the estimates entering the round
	// against the true profile.
	MaxRelErr  float64
	MeanRelErr float64
	// Efficiency is work completed by L divided by what the oracle (exact
	// knowledge of this round's effective speeds) would complete.
	Efficiency float64
	// MakespanOverrun is makespan/L − 1: positive when misallocation makes
	// the round run long.
	MakespanOverrun float64
}

// Result is a full adaptive run.
type Result struct {
	Config Config
	Rounds []RoundStats
	// Estimates are the speed estimates after the final round.
	Estimates profile.Profile
}

// Run executes the adaptive worksharing loop.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	n := len(cfg.True)
	guess := cfg.InitialGuess
	if guess == 0 {
		guess = 1
	}
	est := make(profile.Profile, n)
	for i := range est {
		est[i] = guess
	}
	res := Result{Config: cfg}
	b := cfg.Params.B()
	rng := stats.NewRNG(cfg.Seed)

	for round := 1; round <= cfg.Rounds; round++ {
		// This round's effective speeds (the world's truth for the round).
		eff := cfg.True.Clone()
		if cfg.Jitter > 0 {
			for i := range eff {
				eff[i] *= 1 + cfg.Jitter*(2*rng.Float64()-1)
			}
		}

		stats := RoundStats{Round: round}
		var errSum float64
		for i := range est {
			rel := math.Abs(est[i]-eff[i]) / eff[i]
			errSum += rel
			if rel > stats.MaxRelErr {
				stats.MaxRelErr = rel
			}
		}
		stats.MeanRelErr = errSum / float64(n)

		// Allocate from the estimates, execute against the effective truth.
		alloc, err := schedule.Allocations(cfg.Params, est, cfg.RoundLifespan)
		if err != nil {
			return res, fmt.Errorf("adaptive: round %d allocation: %w", round, err)
		}
		proto := sim.Protocol{Order: identity(n), Alloc: alloc}
		run, err := sim.RunCEP(cfg.Params, eff, proto, sim.Options{})
		if err != nil {
			return res, fmt.Errorf("adaptive: round %d simulation: %w", round, err)
		}

		oracle := core.W(cfg.Params, eff, cfg.RoundLifespan)
		stats.Efficiency = run.CompletedBy(cfg.RoundLifespan) / oracle
		stats.MakespanOverrun = run.Makespan/cfg.RoundLifespan - 1
		res.Rounds = append(res.Rounds, stats)

		// Observe busy times and update the estimates.
		for _, tr := range run.Computers {
			obs := (tr.BusyEnd - tr.RecvEnd) / (b * tr.Work)
			est[tr.ID] = (1-cfg.Alpha)*est[tr.ID] + cfg.Alpha*obs
		}
	}
	res.Estimates = est
	return res, nil
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
