package fault

import (
	"math"
	"testing"

	"hetero/internal/stats"
)

// TestValidateJoinTable drives Plan.Validate over join events interleaved
// with the degradation kinds: the accept/reject matrix for elastic plans.
func TestValidateJoinTable(t *testing.T) {
	cases := []struct {
		name string
		pl   Plan
		n    int
		ok   bool
	}{
		{"single join", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5}}}, 2, true},
		{"join at zero", Plan{[]Fault{
			{Kind: Join, Computer: 1, At: 0, Rho: 1}}}, 1, true},
		{"two joins out of order in the list", Plan{[]Fault{
			{Kind: Join, Computer: 3, At: 9, Rho: 0.25},
			{Kind: Join, Computer: 2, At: 4, Rho: 0.75}}}, 2, true},
		{"join then crash of the joined machine", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5},
			{Kind: Crash, Computer: 2, At: 8}}}, 2, true},
		{"join then outage and slowdown on the joined machine", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5},
			{Kind: Outage, Computer: 2, At: 6, Until: 7},
			{Kind: Slowdown, Computer: 2, At: 7, Factor: 2}}}, 2, true},
		{"fault exactly at the join instant", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5},
			{Kind: Slowdown, Computer: 2, At: 5, Factor: 2}}}, 2, true},
		{"join interleaved with base outages and blackouts", Plan{[]Fault{
			{Kind: Outage, Computer: 0, At: 1, Until: 4},
			{Kind: Join, Computer: 2, At: 3, Rho: 0.5},
			{Kind: Blackout, At: 2, Until: 6},
			{Kind: Outage, Computer: 0, At: 5, Until: math.Inf(1)}}}, 2, true},

		{"crash before join", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5},
			{Kind: Crash, Computer: 2, At: 4}}}, 2, false},
		{"outage starting before join", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5},
			{Kind: Outage, Computer: 2, At: 4, Until: 9}}}, 2, false},
		{"slowdown before join", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5},
			{Kind: Slowdown, Computer: 2, At: 1, Factor: 2}}}, 2, false},
		{"join colliding with the base cluster", Plan{[]Fault{
			{Kind: Join, Computer: 1, At: 5, Rho: 0.5}}}, 2, false},
		{"join index gap", Plan{[]Fault{
			{Kind: Join, Computer: 3, At: 5, Rho: 0.5}}}, 2, false},
		{"duplicate join", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5},
			{Kind: Join, Computer: 2, At: 7, Rho: 0.25}}}, 2, false},
		{"join rho zero", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5}}}, 2, false},
		{"join rho above one", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: 1.5}}}, 2, false},
		{"join rho NaN", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 5, Rho: math.NaN()}}}, 2, false},
		{"join onset NaN", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: math.NaN(), Rho: 0.5}}}, 2, false},
		{"join onset infinite", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: math.Inf(1), Rho: 0.5}}}, 2, false},
		{"join onset negative", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: -1, Rho: 0.5}}}, 2, false},
		{"overlapping outages on a joined machine", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 1, Rho: 0.5},
			{Kind: Outage, Computer: 2, At: 2, Until: 5},
			{Kind: Outage, Computer: 2, At: 4, Until: 6}}}, 2, false},
		{"zero-duration outage on a joined machine", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 1, Rho: 0.5},
			{Kind: Outage, Computer: 2, At: 3, Until: 3}}}, 2, false},
		{"second crash of a joined machine", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 1, Rho: 0.5},
			{Kind: Crash, Computer: 2, At: 2},
			{Kind: Crash, Computer: 2, At: 3}}}, 2, false},
	}
	for _, tc := range cases {
		err := tc.pl.Validate(tc.n)
		if tc.ok && err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestEventTimesWithJoins pins the replanning points of elastic plans:
// joins count like any other membership change, window closings still
// register, and events at 0 or at/after the horizon drop out.
func TestEventTimesWithJoins(t *testing.T) {
	cases := []struct {
		name    string
		pl      Plan
		horizon float64
		want    []float64
	}{
		{"join between outage edges", Plan{[]Fault{
			{Kind: Outage, Computer: 0, At: 2, Until: 8},
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5}}}, 100,
			[]float64{2, 5, 8}},
		{"join at zero is not an event", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 0, Rho: 0.5},
			{Kind: Crash, Computer: 0, At: 3}}}, 100,
			[]float64{3}},
		{"join at the horizon drops out", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 100, Rho: 0.5},
			{Kind: Join, Computer: 3, At: 99, Rho: 0.5}}}, 100,
			[]float64{99}},
		{"join after the lifespan drops out", Plan{[]Fault{
			{Kind: Join, Computer: 2, At: 250, Rho: 0.5},
			{Kind: Blackout, At: 10, Until: 20}}}, 100,
			[]float64{10, 20}},
		{"coincident join and outage close dedupe", Plan{[]Fault{
			{Kind: Outage, Computer: 0, At: 2, Until: 5},
			{Kind: Join, Computer: 2, At: 5, Rho: 0.5}}}, 100,
			[]float64{2, 5}},
		{"permanent outage keeps only its onset", Plan{[]Fault{
			{Kind: Outage, Computer: 0, At: 2, Until: math.Inf(1)},
			{Kind: Join, Computer: 2, At: 7, Rho: 0.5}}}, 100,
			[]float64{2, 7}},
	}
	for _, tc := range cases {
		if err := tc.pl.Validate(2); err != nil {
			t.Fatalf("%s: plan invalid: %v", tc.name, err)
		}
		got := tc.pl.EventTimes(tc.horizon)
		if len(got) != len(tc.want) {
			t.Errorf("%s: EventTimes = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: EventTimes = %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

// TestCompileJoinTimeline pins the compiled shape of a join: no progress
// before the instant, full speed after, composed with later faults.
func TestCompileJoinTimeline(t *testing.T) {
	pl := Plan{[]Fault{
		{Kind: Join, Computer: 2, At: 10, Rho: 0.5},
		{Kind: Slowdown, Computer: 2, At: 20, Factor: 2},
		{Kind: Join, Computer: 3, At: 0, Rho: 0.25},
	}}
	tl, err := Compile(pl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tl.N() != 4 || tl.BaseN() != 2 {
		t.Fatalf("timeline sized %d (base %d), want 4 (base 2)", tl.N(), tl.BaseN())
	}
	if tl.JoinTime(0) != 0 || tl.JoinTime(1) != 0 {
		t.Fatal("base machines must report join time 0")
	}
	if tl.JoinTime(2) != 10 || tl.JoinTime(3) != 0 {
		t.Fatalf("join times %v/%v, want 10/0", tl.JoinTime(2), tl.JoinTime(3))
	}
	if !tl.Down(2, 5) || tl.Down(2, 10) {
		t.Fatal("joined machine must be down strictly before its join instant")
	}
	if tl.Joined(2, 9.99) || !tl.Joined(2, 10) {
		t.Fatal("Joined disagrees with the join instant")
	}
	if tl.Down(3, 0) {
		t.Fatal("a join at 0 must be up from the start")
	}
	// 12 units of work started at the join: 10 at full speed, the remaining
	// 2 at half speed → finish at 10 + 10 + 4 = 24.
	if got := tl.BusyFinish(2, 10, 12); math.Abs(got-24) > 1e-12 {
		t.Fatalf("joined BusyFinish %v, want 24", got)
	}
	// Work handed to the machine before it joins waits for the join.
	if got := tl.BusyFinish(2, 0, 5); math.Abs(got-15) > 1e-12 {
		t.Fatalf("pre-join BusyFinish %v, want 15", got)
	}
}

// TestJoinHelpers pins NumJoins, JoinRhos, and the recruit ordering of
// Joins.
func TestJoinHelpers(t *testing.T) {
	pl := Plan{[]Fault{
		{Kind: Crash, Computer: 0, At: 3},
		{Kind: Join, Computer: 3, At: 7, Rho: 0.25},
		{Kind: Join, Computer: 2, At: 7, Rho: 0.5},
		{Kind: Join, Computer: 4, At: 1, Rho: 0.75},
	}}
	if err := pl.Validate(2); err != nil {
		t.Fatal(err)
	}
	if pl.NumJoins() != 3 {
		t.Fatalf("NumJoins = %d, want 3", pl.NumJoins())
	}
	rhos := pl.JoinRhos(2)
	want := []float64{0.5, 0.25, 0.75}
	for i := range want {
		if rhos[i] != want[i] {
			t.Fatalf("JoinRhos = %v, want %v", rhos, want)
		}
	}
	joins := pl.Joins()
	order := []int{4, 2, 3}
	for i, f := range joins {
		if f.Computer != order[i] {
			t.Fatalf("Joins order %v, want computers %v", joins, order)
		}
	}
}

// TestRandomElasticAlwaysValid is the chaos generator's contract: every
// seeded draw validates against its base cluster and actually exercises
// joins at realistic intensities.
func TestRandomElasticAlwaysValid(t *testing.T) {
	joins := 0
	for seed := uint64(1); seed <= 200; seed++ {
		rng := stats.NewRNG(seed)
		pl := RandomElastic(rng, 8, 1000, 12)
		if err := pl.Validate(8); err != nil {
			t.Fatalf("seed %d: invalid elastic plan: %v", seed, err)
		}
		joins += pl.NumJoins()
		if _, err := Compile(pl, 8); err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
	}
	if joins == 0 {
		t.Fatal("200 seeded draws produced no joins")
	}
}
