package fault

import (
	"math"
	"sort"
)

// segment is one piece of a computer's piecewise-constant degradation: from
// Start (inclusive) until the next segment's Start, time-per-work-unit is
// multiplied by Mult. Mult = +Inf means the computer makes no progress
// (outage or crash).
type segment struct {
	Start float64
	Mult  float64
}

// window is a half-open interval [Start, End).
type window struct {
	Start, End float64
}

// Timeline is a Plan compiled against an n-computer base cluster:
// per-computer piecewise speed multipliers, crash times, join times, and
// channel blackout windows, in a form the simulator can integrate over. A
// plan with J join events compiles to a timeline over n+J computers —
// joined machines make no progress (Mult = +Inf) before their join instant.
// Compile validates the plan; a Timeline is immutable and safe for
// concurrent use.
type Timeline struct {
	n         int
	base      int
	crash     []float64 // +Inf when the computer never crashes
	join      []float64 // 0 for base machines, the join instant for joined ones
	segs      [][]segment
	blackouts []window
	slowdowns [][]Fault // per computer, sorted by onset (for DriftMult)
}

// Compile validates pl against an n-computer base cluster and builds its
// Timeline, sized n plus the plan's join events.
func Compile(pl Plan, n int) (*Timeline, error) {
	if err := pl.Validate(n); err != nil {
		return nil, err
	}
	ext := n + pl.NumJoins()
	tl := &Timeline{
		n:         ext,
		base:      n,
		crash:     make([]float64, ext),
		join:      make([]float64, ext),
		segs:      make([][]segment, ext),
		slowdowns: make([][]Fault, ext),
	}
	type change struct {
		at   float64
		kind Kind
		down bool // outage boundary: true = enter, false = leave
		f    float64
	}
	perComp := make([][]change, ext)
	for i := range tl.crash {
		tl.crash[i] = math.Inf(1)
	}
	for _, f := range pl.Faults {
		switch f.Kind {
		case Crash:
			tl.crash[f.Computer] = f.At
			perComp[f.Computer] = append(perComp[f.Computer], change{at: f.At, kind: Crash})
		case Outage:
			perComp[f.Computer] = append(perComp[f.Computer],
				change{at: f.At, kind: Outage, down: true},
				change{at: f.Until, kind: Outage, down: false})
		case Slowdown:
			perComp[f.Computer] = append(perComp[f.Computer], change{at: f.At, kind: Slowdown, f: f.Factor})
			tl.slowdowns[f.Computer] = append(tl.slowdowns[f.Computer], f)
		case Blackout:
			tl.blackouts = append(tl.blackouts, window{f.At, f.Until})
		case Join:
			// Before its join instant the machine is part of the timeline but
			// makes no progress — exactly an outage covering [0, At).
			tl.join[f.Computer] = f.At
			if f.At > 0 {
				perComp[f.Computer] = append(perComp[f.Computer],
					change{at: 0, kind: Outage, down: true},
					change{at: f.At, kind: Outage, down: false})
			}
		}
	}
	sort.Slice(tl.blackouts, func(i, j int) bool { return tl.blackouts[i].Start < tl.blackouts[j].Start })
	for c := range tl.slowdowns {
		sort.Slice(tl.slowdowns[c], func(i, j int) bool { return tl.slowdowns[c][i].At < tl.slowdowns[c][j].At })
	}
	for c, changes := range perComp {
		sort.SliceStable(changes, func(i, j int) bool { return changes[i].at < changes[j].at })
		segs := []segment{{Start: 0, Mult: 1}}
		drift := 1.0
		down := 0
		crashed := false
		for k := 0; k < len(changes); {
			at := changes[k].at
			for k < len(changes) && changes[k].at == at {
				switch ch := changes[k]; ch.kind {
				case Crash:
					crashed = true
				case Slowdown:
					drift *= ch.f
				case Outage:
					if ch.down {
						down++
					} else {
						down--
					}
				}
				k++
			}
			mult := drift
			if crashed || down > 0 {
				mult = math.Inf(1)
			}
			if last := &segs[len(segs)-1]; last.Start == at {
				last.Mult = mult
			} else if last.Mult != mult {
				segs = append(segs, segment{Start: at, Mult: mult})
			}
		}
		tl.segs[c] = segs
	}
	return tl, nil
}

// N returns the cluster size the timeline was compiled for, including
// joined machines.
func (tl *Timeline) N() int { return tl.n }

// BaseN returns the base cluster size (machines present from time 0).
func (tl *Timeline) BaseN() int { return tl.base }

// JoinTime returns when computer i joins the cluster: 0 for base machines,
// the join instant for joined ones.
func (tl *Timeline) JoinTime(i int) float64 { return tl.join[i] }

// Joined reports whether computer i is part of the cluster at time t.
func (tl *Timeline) Joined(i int, t float64) bool { return t >= tl.join[i] }

// CrashTime returns when computer i crashes, or +Inf if it never does.
func (tl *Timeline) CrashTime(i int) float64 { return tl.crash[i] }

// Alive reports whether computer i has not crashed strictly before or at t.
func (tl *Timeline) Alive(i int, t float64) bool { return t < tl.crash[i] }

// Down reports whether computer i makes no progress at time t (crashed or
// inside an outage window).
func (tl *Timeline) Down(i int, t float64) bool {
	return math.IsInf(tl.multAt(i, t), 1)
}

// DriftMult returns the product of all slowdown factors of computer i with
// onset ≤ t — the multiplier the replanner applies to ρᵢ.
func (tl *Timeline) DriftMult(i int, t float64) float64 {
	m := 1.0
	for _, f := range tl.slowdowns[i] {
		if f.At > t {
			break
		}
		m *= f.Factor
	}
	return m
}

// ChannelDown reports whether the shared channel is blacked out at time t.
func (tl *Timeline) ChannelDown(t float64) bool {
	for _, w := range tl.blackouts {
		if w.Start > t {
			return false
		}
		if t < w.End {
			return true
		}
	}
	return false
}

func (tl *Timeline) multAt(i int, t float64) float64 {
	segs := tl.segs[i]
	// Last segment with Start ≤ t.
	k := sort.Search(len(segs), func(j int) bool { return segs[j].Start > t }) - 1
	if k < 0 {
		k = 0
	}
	return segs[k].Mult
}

// BusyFinish returns the time at which computer i, starting a busy block at
// time start that would take `need` time units at nominal speed, actually
// finishes under the timeline: the earliest T with ∫ₛᵀ dt/mult(t) = need.
// Returns +Inf if the computer never finishes (crash, permanent outage).
// With no faults this is exactly start + need, bit-for-bit.
func (tl *Timeline) BusyFinish(i int, start, need float64) float64 {
	segs := tl.segs[i]
	k := sort.Search(len(segs), func(j int) bool { return segs[j].Start > start }) - 1
	if k < 0 {
		k = 0
	}
	cur, rem := start, need
	for ; ; k++ {
		end := math.Inf(1)
		if k+1 < len(segs) {
			end = segs[k+1].Start
		}
		mult := segs[k].Mult
		if math.IsInf(mult, 1) {
			if math.IsInf(end, 1) {
				return math.Inf(1) // down forever
			}
			cur = end
			continue
		}
		if math.IsInf(end, 1) || rem*mult <= end-cur {
			return cur + rem*mult
		}
		rem -= (end - cur) / mult
		cur = end
	}
}

// ChannelFinish returns when a transfer occupying the channel for dur time
// units, starting at time start, completes under the blackout windows: the
// earliest T with the non-blackout measure of [start, T] equal to dur. With
// no blackouts this is exactly start + dur, bit-for-bit.
func (tl *Timeline) ChannelFinish(start, dur float64) float64 {
	cur, rem := start, dur
	for _, w := range tl.blackouts {
		if w.End <= cur {
			continue
		}
		if w.Start > cur {
			avail := w.Start - cur
			if rem <= avail {
				return cur + rem
			}
			rem -= avail
		}
		if math.IsInf(w.End, 1) {
			return math.Inf(1)
		}
		cur = w.End
	}
	return cur + rem
}
