// Package fault models the ways a real heterogeneous cluster deviates from
// the paper's idealized profile P = ⟨ρ1,…,ρn⟩ over a lifespan: machines
// crash, drop out temporarily, drift slower, and the shared channel blacks
// out. A Plan is a composable list of such faults; compiling it against an
// n-computer cluster yields a Timeline — the piecewise-effective profile
// and channel availability that the fault-aware simulator in internal/sim
// executes against.
//
// Semantics (all times are absolute simulation times, same units as the
// lifespan L):
//
//   - crash at t: the computer stops forever at t. Work it has not fully
//     returned to the server by t is lost (FIFO semantics: a result counts
//     only when its message has completely arrived at the server).
//   - outage [at, until): the computer makes no compute progress inside the
//     window and resumes where it left off when the window closes.
//   - slowdown at t with factor f > 0: the computer's effective ρ is
//     multiplied by f from t onward (f > 1 is a slowdown — ρ is time per
//     work unit; factors compose multiplicatively).
//   - blackout [at, until): the shared channel carries no traffic inside
//     the window; in-flight transfers pause and resume.
//   - join at t with speed rho: a machine not in the base profile enters
//     the cluster at t and is available from then on. Joined machines are
//     indexed past the base cluster: with a base of n computers and J joins,
//     the elastic cluster has computers 0..n+J−1, and the join carrying
//     Computer = n+k is the (k+1)-th joined machine. Joined machines can
//     themselves crash, stall, or drift — any fault may reference them, as
//     long as its onset is not before the join.
//
// Until may be +Inf for a permanent outage or blackout. Overlapping windows
// of the same kind on the same resource are rejected — they make "the"
// window of an event ambiguous; express composite failures as disjoint
// windows or a crash.
package fault

import (
	"fmt"
	"math"
	"sort"

	"hetero/internal/stats"
)

// Kind names a fault model.
type Kind string

// The five composable fault kinds. The first four degrade the cluster; Join
// is the elastic kind — membership growth mid-lifespan.
const (
	Crash    Kind = "crash"
	Outage   Kind = "outage"
	Slowdown Kind = "slowdown"
	Blackout Kind = "blackout"
	Join     Kind = "join"
)

// Fault is one fault event or window. Computer is the 0-based index into
// the elastic cluster (ignored for blackouts, which affect the shared
// channel); for a Join it names the joined machine itself and must sit past
// the base cluster (see the package comment).
type Fault struct {
	Kind     Kind    `json:"kind"`
	Computer int     `json:"computer,omitempty"`
	At       float64 `json:"at"`
	Until    float64 `json:"until,omitempty"`  // outage, blackout
	Factor   float64 `json:"factor,omitempty"` // slowdown
	Rho      float64 `json:"rho,omitempty"`    // join: the machine's speed, in (0,1]
}

// Plan is a set of faults applied to one simulated lifespan.
type Plan struct {
	Faults []Fault `json:"faults"`
}

// Empty reports whether the plan contains no faults.
func (pl Plan) Empty() bool { return len(pl.Faults) == 0 }

// FirstOnset returns the earliest fault onset time, or +Inf for an empty
// plan. Before the first onset a faulty execution is identical to the
// fault-free one.
func (pl Plan) FirstOnset() float64 {
	t := math.Inf(1)
	for _, f := range pl.Faults {
		if f.At < t {
			t = f.At
		}
	}
	return t
}

// Validate checks the plan against an n-computer base cluster: finite
// non-negative onsets, windows with until > at (until may be +Inf),
// positive finite slowdown factors, computer indices in range, at most one
// crash per computer, and pairwise-disjoint windows per computer (outages)
// and for the channel (blackouts).
//
// Join events extend the cluster: with J joins, indices up to n+J−1 are in
// range for every per-computer fault, the joins themselves must carry the
// indices n..n+J−1 (each exactly once — no gaps, no duplicates), a join ρ
// must be a valid normalized speed in (0,1], and no crash, outage, or
// slowdown may have an onset (window start) before its machine joins.
func (pl Plan) Validate(n int) error {
	joinAt, err := pl.joinTimes(n)
	if err != nil {
		return err
	}
	ext := n + len(joinAt)
	// onset returns when computer c becomes part of the cluster (0 for base
	// machines; the join time for joined ones).
	onset := func(c int) float64 {
		if c < n {
			return 0
		}
		return joinAt[c-n]
	}
	crashes := make(map[int]bool)
	var outages = make(map[int][][2]float64)
	var blackouts [][2]float64
	for i, f := range pl.Faults {
		if math.IsNaN(f.At) || math.IsInf(f.At, 0) || f.At < 0 {
			return fmt.Errorf("fault: faults[%d] onset %v must be finite and non-negative", i, f.At)
		}
		switch f.Kind {
		case Crash:
			if f.Computer < 0 || f.Computer >= ext {
				return fmt.Errorf("fault: faults[%d] computer %d out of range [0,%d)", i, f.Computer, ext)
			}
			if f.At < onset(f.Computer) {
				return fmt.Errorf("fault: faults[%d] crashes computer %d at %v, before it joins at %v", i, f.Computer, f.At, onset(f.Computer))
			}
			if crashes[f.Computer] {
				return fmt.Errorf("fault: faults[%d] is a second crash for computer %d", i, f.Computer)
			}
			crashes[f.Computer] = true
		case Outage:
			if f.Computer < 0 || f.Computer >= ext {
				return fmt.Errorf("fault: faults[%d] computer %d out of range [0,%d)", i, f.Computer, ext)
			}
			if f.At < onset(f.Computer) {
				return fmt.Errorf("fault: faults[%d] outages computer %d at %v, before it joins at %v", i, f.Computer, f.At, onset(f.Computer))
			}
			if math.IsNaN(f.Until) || f.Until <= f.At {
				return fmt.Errorf("fault: faults[%d] outage window [%v,%v) is empty or invalid", i, f.At, f.Until)
			}
			outages[f.Computer] = append(outages[f.Computer], [2]float64{f.At, f.Until})
		case Slowdown:
			if f.Computer < 0 || f.Computer >= ext {
				return fmt.Errorf("fault: faults[%d] computer %d out of range [0,%d)", i, f.Computer, ext)
			}
			if f.At < onset(f.Computer) {
				return fmt.Errorf("fault: faults[%d] slows computer %d at %v, before it joins at %v", i, f.Computer, f.At, onset(f.Computer))
			}
			if math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) || f.Factor <= 0 {
				return fmt.Errorf("fault: faults[%d] slowdown factor %v must be positive and finite", i, f.Factor)
			}
		case Blackout:
			if math.IsNaN(f.Until) || f.Until <= f.At {
				return fmt.Errorf("fault: faults[%d] blackout window [%v,%v) is empty or invalid", i, f.At, f.Until)
			}
			blackouts = append(blackouts, [2]float64{f.At, f.Until})
		case Join:
			// Fully validated by joinTimes.
		default:
			return fmt.Errorf("fault: faults[%d] has unknown kind %q", i, f.Kind)
		}
	}
	for c, ws := range outages {
		if err := disjoint(ws); err != nil {
			return fmt.Errorf("fault: computer %d outages %v", c, err)
		}
	}
	if err := disjoint(blackouts); err != nil {
		return fmt.Errorf("fault: blackouts %v", err)
	}
	return nil
}

// joinTimes collects the plan's join events against an n-computer base
// cluster: joinTimes[k] is when machine n+k joins. It enforces the join
// invariants — finite non-negative onsets, ρ in (0,1], and Computer indices
// covering exactly n..n+J−1 with no duplicates or gaps.
func (pl Plan) joinTimes(n int) ([]float64, error) {
	var joins []Fault
	for i, f := range pl.Faults {
		if f.Kind != Join {
			continue
		}
		if math.IsNaN(f.At) || math.IsInf(f.At, 0) || f.At < 0 {
			return nil, fmt.Errorf("fault: faults[%d] join onset %v must be finite and non-negative", i, f.At)
		}
		if math.IsNaN(f.Rho) || f.Rho <= 0 || f.Rho > 1 {
			return nil, fmt.Errorf("fault: faults[%d] join ρ = %v must be in (0,1]", i, f.Rho)
		}
		if f.Computer < n {
			return nil, fmt.Errorf("fault: faults[%d] join computer %d collides with the base cluster [0,%d); joined machines start at %d", i, f.Computer, n, n)
		}
		joins = append(joins, f)
	}
	at := make([]float64, len(joins))
	seen := make([]bool, len(joins))
	for _, f := range joins {
		k := f.Computer - n
		if k >= len(joins) {
			return nil, fmt.Errorf("fault: join computer %d leaves a gap; %d joins must cover exactly [%d,%d)", f.Computer, len(joins), n, n+len(joins))
		}
		if seen[k] {
			return nil, fmt.Errorf("fault: duplicate join for computer %d", f.Computer)
		}
		seen[k] = true
		at[k] = f.At
	}
	return at, nil
}

// NumJoins returns the number of join events in the plan.
func (pl Plan) NumJoins() int {
	j := 0
	for _, f := range pl.Faults {
		if f.Kind == Join {
			j++
		}
	}
	return j
}

// JoinRhos returns the speeds of the joined machines in joined-index order
// (machine n+k of a plan validated against an n-computer base cluster has
// speed JoinRhos(n)[k]). The plan must already have passed Validate.
func (pl Plan) JoinRhos(n int) []float64 {
	rhos := make([]float64, pl.NumJoins())
	for _, f := range pl.Faults {
		if f.Kind == Join {
			rhos[f.Computer-n] = f.Rho
		}
	}
	return rhos
}

// Joins returns the plan's join events sorted by onset (ties by joined
// index), the order an elastic server recruits them in.
func (pl Plan) Joins() []Fault {
	var joins []Fault
	for _, f := range pl.Faults {
		if f.Kind == Join {
			joins = append(joins, f)
		}
	}
	sort.SliceStable(joins, func(i, j int) bool {
		if joins[i].At != joins[j].At {
			return joins[i].At < joins[j].At
		}
		return joins[i].Computer < joins[j].Computer
	})
	return joins
}

func disjoint(ws [][2]float64) error {
	sort.Slice(ws, func(i, j int) bool { return ws[i][0] < ws[j][0] })
	for i := 1; i < len(ws); i++ {
		if ws[i][0] < ws[i-1][1] {
			return fmt.Errorf("overlap: [%v,%v) and [%v,%v)", ws[i-1][0], ws[i-1][1], ws[i][0], ws[i][1])
		}
	}
	return nil
}

// EventTimes returns the sorted, de-duplicated times at which the
// piecewise-effective cluster changes inside (0, horizon): fault onsets,
// window closings, crashes, and joins (membership growth is a change like
// any other). These are the replanning points of the Replan strategy in
// internal/sim.
func (pl Plan) EventTimes(horizon float64) []float64 {
	var ts []float64
	add := func(t float64) {
		if t > 0 && t < horizon && !math.IsInf(t, 0) {
			ts = append(ts, t)
		}
	}
	for _, f := range pl.Faults {
		add(f.At)
		switch f.Kind {
		case Outage, Blackout:
			add(f.Until)
		}
	}
	sort.Float64s(ts)
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// CrashOnlyLowerBound returns the pessimal crash-only extension of the
// plan: every computer crashes, and the channel blacks out permanently, at
// the plan's first fault onset t*. Because any faulty execution is
// identical to the fault-free one before t*, work salvaged under the real
// plan is always ≥ work salvaged under this bound — the "everything dies at
// the first sign of trouble" floor the chaos property tests pin. For an
// empty plan the bound is the empty plan itself.
func (pl Plan) CrashOnlyLowerBound(n int) Plan {
	t := pl.FirstOnset()
	if math.IsInf(t, 1) {
		return Plan{}
	}
	lb := Plan{}
	for i := 0; i < n; i++ {
		lb.Faults = append(lb.Faults, Fault{Kind: Crash, Computer: i, At: t})
	}
	lb.Faults = append(lb.Faults, Fault{Kind: Blackout, At: t, Until: math.Inf(1)})
	return lb
}

// Random draws a seeded, always-valid plan of roughly `count` faults over
// an n-computer cluster and horizon L — the generator behind the chaos
// property tests and the fault-tolerance experiments. Kinds are drawn
// uniformly; windows live inside (0, 1.2L); slowdown factors in [1, 4]. At
// most one outage per computer and two (disjoint) blackouts are emitted, so
// validity holds by construction.
// RandomElastic draws a seeded, always-valid elastic plan of roughly
// `count` events over an n-computer base cluster and horizon L: Random's
// mix of crashes, outages, slowdowns, and blackouts, plus joins — machines
// entering mid-lifespan with ρ drawn from [0.05, 1]. About a quarter of the
// events are joins; joined machines may later straggle (a slowdown can land
// on them), so churn composes both ways.
func RandomElastic(rng *stats.RNG, n int, L float64, count int) Plan {
	pl := Plan{}
	crashed := make(map[int]bool)
	outaged := make(map[int]bool)
	blackouts := 0
	joined := 0
	joinAt := make(map[int]float64)
	// onset returns the earliest valid fault time for computer c.
	onset := func(c int) float64 { return joinAt[c] }
	for k := 0; k < count; k++ {
		c := rng.Intn(n + joined)
		at := rng.InRange(0, L)
		switch rng.Intn(5) {
		case 0:
			if crashed[c] || at < onset(c) {
				continue
			}
			crashed[c] = true
			pl.Faults = append(pl.Faults, Fault{Kind: Crash, Computer: c, At: at})
		case 1:
			if outaged[c] || at < onset(c) {
				continue
			}
			outaged[c] = true
			pl.Faults = append(pl.Faults, Fault{Kind: Outage, Computer: c, At: at, Until: at + rng.InRange(0.01, 0.2)*L})
		case 2:
			if at < onset(c) {
				continue
			}
			pl.Faults = append(pl.Faults, Fault{Kind: Slowdown, Computer: c, At: at, Factor: rng.InRange(1, 4)})
		case 3:
			if blackouts >= 1 {
				continue
			}
			blackouts++
			pl.Faults = append(pl.Faults, Fault{Kind: Blackout, At: at, Until: at + rng.InRange(0.005, 0.1)*L})
		case 4:
			id := n + joined
			joined++
			joinAt[id] = at
			pl.Faults = append(pl.Faults, Fault{Kind: Join, Computer: id, At: at, Rho: rng.InRange(0.05, 1)})
		}
	}
	return pl
}

func Random(rng *stats.RNG, n int, L float64, count int) Plan {
	pl := Plan{}
	crashed := make(map[int]bool)
	outaged := make(map[int]bool)
	blackouts := 0
	for k := 0; k < count; k++ {
		c := rng.Intn(n)
		at := rng.InRange(0, L)
		switch rng.Intn(4) {
		case 0:
			if crashed[c] {
				continue
			}
			crashed[c] = true
			pl.Faults = append(pl.Faults, Fault{Kind: Crash, Computer: c, At: at})
		case 1:
			if outaged[c] {
				continue
			}
			outaged[c] = true
			pl.Faults = append(pl.Faults, Fault{Kind: Outage, Computer: c, At: at, Until: at + rng.InRange(0.01, 0.2)*L})
		case 2:
			pl.Faults = append(pl.Faults, Fault{Kind: Slowdown, Computer: c, At: at, Factor: rng.InRange(1, 4)})
		case 3:
			if blackouts >= 1 {
				continue
			}
			blackouts++
			pl.Faults = append(pl.Faults, Fault{Kind: Blackout, At: at, Until: at + rng.InRange(0.005, 0.1)*L})
		}
	}
	return pl
}
