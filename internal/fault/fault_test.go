package fault

import (
	"math"
	"testing"

	"hetero/internal/stats"
)

func TestValidateAcceptsComposedPlan(t *testing.T) {
	pl := Plan{Faults: []Fault{
		{Kind: Crash, Computer: 0, At: 10},
		{Kind: Outage, Computer: 1, At: 2, Until: 5},
		{Kind: Outage, Computer: 1, At: 6, Until: 8},
		{Kind: Slowdown, Computer: 2, At: 1, Factor: 2},
		{Kind: Slowdown, Computer: 2, At: 3, Factor: 1.5},
		{Kind: Blackout, At: 4, Until: 4.5},
		{Kind: Outage, Computer: 0, At: 1, Until: math.Inf(1)},
	}}
	if err := pl.Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		pl   Plan
	}{
		{"nan onset", Plan{[]Fault{{Kind: Crash, Computer: 0, At: math.NaN()}}}},
		{"inf onset", Plan{[]Fault{{Kind: Crash, Computer: 0, At: math.Inf(1)}}}},
		{"negative onset", Plan{[]Fault{{Kind: Crash, Computer: 0, At: -1}}}},
		{"computer out of range", Plan{[]Fault{{Kind: Crash, Computer: 3, At: 1}}}},
		{"negative computer", Plan{[]Fault{{Kind: Outage, Computer: -1, At: 1, Until: 2}}}},
		{"double crash", Plan{[]Fault{{Kind: Crash, Computer: 1, At: 1}, {Kind: Crash, Computer: 1, At: 2}}}},
		{"empty window", Plan{[]Fault{{Kind: Outage, Computer: 0, At: 2, Until: 2}}}},
		{"inverted window", Plan{[]Fault{{Kind: Blackout, At: 3, Until: 1}}}},
		{"nan until", Plan{[]Fault{{Kind: Outage, Computer: 0, At: 1, Until: math.NaN()}}}},
		{"overlapping outages", Plan{[]Fault{
			{Kind: Outage, Computer: 0, At: 1, Until: 4},
			{Kind: Outage, Computer: 0, At: 3, Until: 5}}}},
		{"overlapping blackouts", Plan{[]Fault{
			{Kind: Blackout, At: 1, Until: 4},
			{Kind: Blackout, At: 2, Until: 3}}}},
		{"nan factor", Plan{[]Fault{{Kind: Slowdown, Computer: 0, At: 1, Factor: math.NaN()}}}},
		{"inf factor", Plan{[]Fault{{Kind: Slowdown, Computer: 0, At: 1, Factor: math.Inf(1)}}}},
		{"zero factor", Plan{[]Fault{{Kind: Slowdown, Computer: 0, At: 1, Factor: 0}}}},
		{"unknown kind", Plan{[]Fault{{Kind: "meteor", Computer: 0, At: 1}}}},
	}
	for _, tc := range cases {
		if err := tc.pl.Validate(3); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBusyFinishIntegratesPiecewise(t *testing.T) {
	pl := Plan{Faults: []Fault{
		{Kind: Outage, Computer: 0, At: 10, Until: 20},
		{Kind: Slowdown, Computer: 1, At: 10, Factor: 2},
	}}
	tl, err := Compile(pl, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Computer 0: 15 units of work starting at 0 → 10 before the outage,
	// frozen for 10, the remaining 5 after → finish at 25.
	if got := tl.BusyFinish(0, 0, 15); math.Abs(got-25) > 1e-12 {
		t.Fatalf("outage finish %v, want 25", got)
	}
	// Computer 1: 15 units starting at 0 → 10 at full speed, remaining 5 at
	// half speed take 10 → finish at 20.
	if got := tl.BusyFinish(1, 0, 15); math.Abs(got-20) > 1e-12 {
		t.Fatalf("slowdown finish %v, want 20", got)
	}
	// Computer 2 is untouched: exact arithmetic.
	if got := tl.BusyFinish(2, 3, 15); got != 18 {
		t.Fatalf("untouched finish %v, want 18 exactly", got)
	}
	// Starting inside the outage defers everything to its end.
	if got := tl.BusyFinish(0, 12, 1); math.Abs(got-21) > 1e-12 {
		t.Fatalf("in-outage start finish %v, want 21", got)
	}
}

func TestBusyFinishCrashNeverFinishes(t *testing.T) {
	tl, err := Compile(Plan{[]Fault{{Kind: Crash, Computer: 0, At: 5}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.BusyFinish(0, 0, 4); math.Abs(got-4) > 1e-12 {
		t.Fatalf("pre-crash work finish %v, want 4", got)
	}
	if got := tl.BusyFinish(0, 0, 6); !math.IsInf(got, 1) {
		t.Fatalf("post-crash work finished at %v, want +Inf", got)
	}
	if tl.Alive(0, 5) || !tl.Alive(0, 4.999) {
		t.Fatal("Alive disagrees with crash time")
	}
}

func TestChannelFinishPausesDuringBlackout(t *testing.T) {
	tl, err := Compile(Plan{[]Fault{{Kind: Blackout, At: 10, Until: 25}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.ChannelFinish(0, 10); got != 10 {
		t.Fatalf("transfer ending at blackout start finished at %v, want 10", got)
	}
	if got := tl.ChannelFinish(0, 12); math.Abs(got-27) > 1e-12 {
		t.Fatalf("interrupted transfer finished at %v, want 27", got)
	}
	if got := tl.ChannelFinish(15, 3); math.Abs(got-28) > 1e-12 {
		t.Fatalf("transfer started mid-blackout finished at %v, want 28", got)
	}
	if !tl.ChannelDown(10) || tl.ChannelDown(25) || tl.ChannelDown(9.99) {
		t.Fatal("ChannelDown disagrees with the window")
	}
	perm, err := Compile(Plan{[]Fault{{Kind: Blackout, At: 3, Until: math.Inf(1)}}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := perm.ChannelFinish(0, 5); !math.IsInf(got, 1) {
		t.Fatalf("transfer across permanent blackout finished at %v", got)
	}
}

func TestDriftMultComposes(t *testing.T) {
	tl, err := Compile(Plan{[]Fault{
		{Kind: Slowdown, Computer: 0, At: 5, Factor: 2},
		{Kind: Slowdown, Computer: 0, At: 10, Factor: 3},
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ t, want float64 }{{0, 1}, {5, 2}, {9, 2}, {10, 6}, {100, 6}} {
		if got := tl.DriftMult(0, tc.t); got != tc.want {
			t.Fatalf("DriftMult(0, %v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestEventTimesSortedDeduped(t *testing.T) {
	pl := Plan{Faults: []Fault{
		{Kind: Outage, Computer: 0, At: 5, Until: 9},
		{Kind: Crash, Computer: 1, At: 5},
		{Kind: Blackout, At: 2, Until: math.Inf(1)},
		{Kind: Slowdown, Computer: 0, At: 12, Factor: 2},
	}}
	got := pl.EventTimes(10)
	want := []float64{2, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("EventTimes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EventTimes = %v, want %v", got, want)
		}
	}
}

func TestCrashOnlyLowerBound(t *testing.T) {
	pl := Plan{Faults: []Fault{
		{Kind: Slowdown, Computer: 1, At: 7, Factor: 2},
		{Kind: Outage, Computer: 0, At: 3, Until: 4},
	}}
	lb := pl.CrashOnlyLowerBound(2)
	if err := lb.Validate(2); err != nil {
		t.Fatal(err)
	}
	if len(lb.Faults) != 3 {
		t.Fatalf("%d faults, want 2 crashes + 1 blackout", len(lb.Faults))
	}
	if got := lb.FirstOnset(); got != 3 {
		t.Fatalf("bound onset %v, want 3", got)
	}
	if !(Plan{}).Empty() || !(Plan{}).CrashOnlyLowerBound(4).Empty() {
		t.Fatal("empty plan's bound must be empty")
	}
}

func TestRandomPlansAlwaysValid(t *testing.T) {
	rng := stats.NewRNG(42)
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		count := rng.Intn(10)
		pl := Random(rng, n, 100, count)
		if err := pl.Validate(n); err != nil {
			t.Fatalf("trial %d (n=%d): %v\nplan: %+v", trial, n, err, pl)
		}
		if _, err := Compile(pl, n); err != nil {
			t.Fatalf("trial %d compile: %v", trial, err)
		}
	}
}
