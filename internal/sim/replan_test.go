package sim

import (
	"context"
	"math"
	"testing"
	"time"

	"hetero/internal/core"
	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestSimulateFaultyEmptyPlanMatchesOptimum(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	const L = 3600.0
	for _, replan := range []bool{false, true} {
		rep, err := SimulateFaulty(context.Background(), m, p, L, fault.Plan{}, replan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if re := math.Abs(rep.Salvaged-rep.FaultFree) / rep.FaultFree; re > 1e-9 {
			t.Fatalf("replan=%v: salvaged %v vs fault-free %v (rel err %v)", replan, rep.Salvaged, rep.FaultFree, re)
		}
		if math.Abs(rep.Degradation) > 1e-9 {
			t.Fatalf("replan=%v: degradation %v under empty plan", replan, rep.Degradation)
		}
		if replan && (len(rep.Rounds) != 1 || len(rep.Decisions) != 0) {
			t.Fatalf("empty plan: %d rounds, %d decisions, want 1 and 0", len(rep.Rounds), len(rep.Decisions))
		}
	}
}

func TestReplanCrashDropIsPriced(t *testing.T) {
	// An early crash of the fastest computer. The replanner must record the
	// casualty at the event and price it in O(1) against the running round's
	// evaluator, whatever branch it adopts. (On a pure-crash plan the fixed
	// protocol loses only the crashed allocation while abandoning the round
	// would forfeit all in-flight work, so the projections typically favor
	// riding — the wins come from slow/late results, tested below.)
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.1)
	const L = 3600.0
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Crash, Computer: 2, At: L / 10}}}
	fixed, err := SimulateFaulty(context.Background(), m, p, L, plan, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateFaulty(context.Background(), m, p, L, plan, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Salvaged > rep.FaultFree*(1+1e-9) {
		t.Fatalf("replan salvaged %v exceeds fault-free optimum %v", rep.Salvaged, rep.FaultFree)
	}
	if rep.Salvaged < fixed.Salvaged*(1-1e-9) {
		t.Fatalf("replan salvaged %v below fixed %v", rep.Salvaged, fixed.Salvaged)
	}
	if len(rep.Decisions) != 1 {
		t.Fatalf("%d decisions, want 1 (the crash)", len(rep.Decisions))
	}
	dec := rep.Decisions[0]
	if dec.At != L/10 || dec.Survivors != 2 || len(dec.Dropped) != 1 || dec.Dropped[0] != 2 {
		t.Fatalf("crash decision wrong: %+v", dec)
	}
	// The drop was priced by the incremental evaluator: losing the fastest
	// computer must cost capacity.
	if len(dec.DropPrices) != 1 {
		t.Fatalf("no drop pricing recorded: %+v", dec)
	}
	full := core.WorkRate(m, p)
	if dp := dec.DropPrices[0]; !(dp.WorkRate < full) || dp.Computer != 2 {
		t.Fatalf("drop price %+v not below full-cluster rate %v", dp, full)
	}
	// Both projections are real salvage totals, bounded by the optimum.
	if dec.RideValue > rep.FaultFree*(1+1e-9) || dec.ReplanValue > rep.FaultFree*(1+1e-9) {
		t.Fatalf("projection exceeds optimum: %+v", dec)
	}
}

func TestReplanBeatsFixedProtocolOnOutage(t *testing.T) {
	// The fastest computer freezes for a stretch. Under the fixed protocol its
	// (dominant) allocation comes back after the lifespan and counts for
	// nothing. At the onset the replanner projects that abandoning the round
	// for the two slow survivors would salvage less than riding, so it rides;
	// at recovery it abandons the crippled round and re-divides the remaining
	// lifespan across all three computers — salvaging far more than fixed.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.1)
	const L = 3600.0
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Outage, Computer: 2, At: 100, Until: 600}}}
	fixed, err := SimulateFaulty(context.Background(), m, p, L, plan, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateFaulty(context.Background(), m, p, L, plan, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Salvaged <= fixed.Salvaged {
		t.Fatalf("replan salvaged %v, fixed %v — replanning must win here", rep.Salvaged, fixed.Salvaged)
	}
	if rep.Salvaged > rep.FaultFree*(1+1e-9) {
		t.Fatalf("salvaged %v exceeds optimum %v", rep.Salvaged, rep.FaultFree)
	}
	if len(rep.Decisions) != 2 {
		t.Fatalf("%d decisions, want 2 (outage onset and recovery)", len(rep.Decisions))
	}
	onset, recovery := rep.Decisions[0], rep.Decisions[1]
	if onset.Replanned || len(onset.Dropped) != 1 || onset.Dropped[0] != 2 || onset.Survivors != 2 {
		t.Fatalf("onset decision: %+v (abandoning for 2 slow survivors must project below riding)", onset)
	}
	if len(onset.DropPrices) != 1 || onset.DropPrices[0].Computer != 2 {
		t.Fatalf("outage onset not priced: %+v", onset)
	}
	if !recovery.Replanned || len(recovery.Restored) != 1 || recovery.Restored[0] != 2 || recovery.Survivors != 3 {
		t.Fatalf("recovery decision: %+v", recovery)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("%d rounds, want 2 (ride through the outage, replan at recovery)", len(rep.Rounds))
	}
	if got := rep.Rounds[1].Computers; len(got) != 3 {
		t.Fatalf("recovery round ran on %v, want all 3 computers", got)
	}
	if rep.Degradation <= 0 || rep.Degradation >= 1 {
		t.Fatalf("implausible degradation %v (salvaged %v)", rep.Degradation, rep.Salvaged)
	}
}

func TestReplanNeverWorseThanFixedOnBlackout(t *testing.T) {
	// A mid-lifespan channel blackout delays everything in flight. Whatever
	// branch the replanner projects best, it must not fall below the fixed
	// protocol, and both decisions (blackout start and end) are recorded.
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	const L = 1000.0
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Blackout, At: 400, Until: 600}}}
	fixed, err := SimulateFaulty(context.Background(), m, p, L, plan, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateFaulty(context.Background(), m, p, L, plan, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != 2 {
		t.Fatalf("%d decisions, want 2", len(rep.Decisions))
	}
	if rep.Salvaged < fixed.Salvaged*(1-1e-9) {
		t.Fatalf("replan salvaged %v below fixed %v", rep.Salvaged, fixed.Salvaged)
	}
	if rep.Salvaged > rep.FaultFree*(1+1e-9) {
		t.Fatalf("salvaged %v exceeds optimum %v", rep.Salvaged, rep.FaultFree)
	}
}

func TestReplanDriftSlowsPlanning(t *testing.T) {
	// A 3× drift on the fast machine: the fixed protocol's now-oversized
	// allocation returns too late to count, so the replanner abandons the
	// round, and its post-drift round plans at a lower rate.
	m := model.Table1()
	p := profile.MustNew(1, 0.25)
	const L = 2000.0
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Slowdown, Computer: 1, At: 500, Factor: 3}}}
	rep, err := SimulateFaulty(context.Background(), m, p, L, plan, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Decisions) != 1 || !rep.Decisions[0].Replanned {
		t.Fatalf("drift event did not trigger a replan: %+v", rep.Decisions)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("%d rounds, want 2", len(rep.Rounds))
	}
	if !(rep.Rounds[1].PlannedRate < rep.Rounds[0].PlannedRate) {
		t.Fatalf("drift did not lower the planned rate: %v → %v", rep.Rounds[0].PlannedRate, rep.Rounds[1].PlannedRate)
	}
	if rep.Salvaged > rep.FaultFree*(1+1e-9) {
		t.Fatalf("salvaged %v exceeds optimum %v", rep.Salvaged, rep.FaultFree)
	}
	fixed, err := SimulateFaulty(context.Background(), m, p, L, plan, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Salvaged <= fixed.Salvaged {
		t.Fatalf("replan salvaged %v, fixed %v — replanning must win under drift", rep.Salvaged, fixed.Salvaged)
	}
}

func TestChaosReplanProperties(t *testing.T) {
	// Replan-mode chaos, for any seeded plan: salvage is bounded above by the
	// fault-free optimum, bounded below by the fixed protocol on the same
	// plan (the greedy ride-vs-replan rule only abandons a round when the
	// exact rollout projects at least as much), and the accounting balances.
	rng := stats.NewRNG(99)
	m := model.Table1()
	const L = 3600.0
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(12)
		p := profile.RandomNormalized(rng, n)
		plan := fault.Random(rng, n, L, rng.Intn(8))
		rep, err := SimulateFaulty(context.Background(), m, p, L, plan, true, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fixed, err := SimulateFaulty(context.Background(), m, p, L, plan, false, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if rep.Salvaged > rep.FaultFree*(1+1e-9) {
			t.Fatalf("trial %d: salvaged %v exceeds optimum %v\nplan %+v", trial, rep.Salvaged, rep.FaultFree, plan)
		}
		if rep.Salvaged < fixed.Salvaged*(1-1e-9)-1e-9 {
			t.Fatalf("trial %d: replan salvaged %v below fixed %v\nplan %+v", trial, rep.Salvaged, fixed.Salvaged, plan)
		}
		if rep.Salvaged < 0 || rep.Dispatched < rep.Salvaged*(1-1e-12) {
			t.Fatalf("trial %d: accounting salvaged %v dispatched %v", trial, rep.Salvaged, rep.Dispatched)
		}
		if math.Abs(rep.Lost-(rep.Dispatched-rep.Salvaged)) > 1e-9*math.Max(1, rep.Dispatched) {
			t.Fatalf("trial %d: lost %v ≠ dispatched−salvaged", trial, rep.Lost)
		}
		events := len(plan.EventTimes(L))
		if len(rep.Decisions) != events {
			t.Fatalf("trial %d: %d decisions for %d events", trial, len(rep.Decisions), events)
		}
		if len(rep.Rounds) < 1 || len(rep.Rounds) > events+1 {
			t.Fatalf("trial %d: %d rounds for %d events", trial, len(rep.Rounds), events)
		}
	}
}

func TestSimulateFaultyHonorsContext(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := SimulateFaulty(ctx, m, p, 1000, fault.Plan{}, true, Options{}); err == nil {
		t.Fatal("expired context accepted")
	}
	if _, err := SimulateFaulty(ctx, m, p, 1000, fault.Plan{}, false, Options{}); err == nil {
		t.Fatal("expired context accepted (fixed protocol)")
	}
}

func TestSimulateFaultyRejectsBadInput(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	if _, err := SimulateFaulty(nil, m, p, 0, fault.Plan{}, false, Options{}); err == nil {
		t.Fatal("zero lifespan accepted")
	}
	if _, err := SimulateFaulty(nil, m, p, math.Inf(1), fault.Plan{}, false, Options{}); err == nil {
		t.Fatal("infinite lifespan accepted")
	}
	bad := fault.Plan{Faults: []fault.Fault{{Kind: fault.Crash, Computer: 9, At: 1}}}
	if _, err := SimulateFaulty(nil, m, p, 100, bad, true, Options{}); err == nil {
		t.Fatal("out-of-range fault accepted")
	}
}
