package sim

import (
	"math"
	"sort"
	"sync"
	"testing"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// TestRunCEPRedundantBitIdenticalOff is the golden invariant: with the
// trivial assignment (redundancy off), RunCEPRedundant performs the exact
// floating-point operations of RunCEPFaulty — and, on an empty plan, of
// RunCEP — in the same event order. Every field must match bit-for-bit.
func TestRunCEPRedundantBitIdenticalOff(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.35, 1, 0.6, 0.82, 0.5}
	pr, err := OptimalFIFO(m, p, 1800)
	if err != nil {
		t.Fatal(err)
	}
	plans := map[string]fault.Plan{
		"empty": {},
		"churn": {Faults: []fault.Fault{
			{Kind: fault.Slowdown, Computer: 1, At: 200, Factor: 3},
			{Kind: fault.Crash, Computer: 3, At: 900},
			{Kind: fault.Outage, Computer: 0, At: 100, Until: 400},
			{Kind: fault.Blackout, At: 50, Until: 80},
		}},
	}
	for name, plan := range plans {
		faulty, err := RunCEPFaulty(m, p, pr, plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		red, err := RunCEPRedundant(m, p, pr, Assignment{}, plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if red.Useful != faulty.Completed || red.Dispatched != faulty.Dispatched ||
			red.Makespan != faulty.Makespan || red.Events != faulty.Events {
			t.Fatalf("%s: redundant (%v, %v, %v, %d) ≠ faulty (%v, %v, %v, %d)", name,
				red.Useful, red.Dispatched, red.Makespan, red.Events,
				faulty.Completed, faulty.Dispatched, faulty.Makespan, faulty.Events)
		}
		for k := range red.Computers {
			if red.Computers[k] != faulty.Computers[k] {
				t.Fatalf("%s: computer %d trace diverged:\n%+v\n%+v", name, k,
					red.Computers[k], faulty.Computers[k])
			}
		}
		if got, want := red.UsefulBy(1800), faulty.CompletedBy(1800); got != want {
			t.Fatalf("%s: UsefulBy %v ≠ CompletedBy %v", name, got, want)
		}
	}
	// And against the no-fault simulator on the empty plan.
	clean, err := RunCEP(m, p, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := RunCEPRedundant(m, p, pr, TrivialAssignment(pr), fault.Plan{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if red.Useful != clean.Completed || red.Makespan != clean.Makespan {
		t.Fatalf("empty plan: redundant (%v, %v) ≠ clean (%v, %v)",
			red.Useful, red.Makespan, clean.Completed, clean.Makespan)
	}
	for k := range red.Computers {
		if red.Computers[k].ComputerTrace != clean.Computers[k] {
			t.Fatalf("computer %d trace diverged from RunCEP", k)
		}
	}
}

func TestParseRedundancy(t *testing.T) {
	cases := []struct {
		in   string
		want Redundancy
		ok   bool
	}{
		{"", Redundancy{}, true},
		{"off", Redundancy{}, true},
		{"none", Redundancy{}, true},
		{"2", Redundancy{Replicas: 2}, true},
		{" 3 ", Redundancy{Replicas: 3}, true},
		{"coded:2", Redundancy{CodedK: 2, CodedN: 3}, true},
		{"coded:2of4", Redundancy{CodedK: 2, CodedN: 4}, true},
		{"CODED:3of5", Redundancy{CodedK: 3, CodedN: 5}, true},
		{"replicated-3", Redundancy{Replicas: 3}, true},
		{"coded-2of4", Redundancy{CodedK: 2, CodedN: 4}, true},
		{"2@0.15", Redundancy{Replicas: 2, Margin: 0.15}, true},
		{"replicated-2@0.1", Redundancy{Replicas: 2, Margin: 0.1}, true},
		{"coded:2of4@0.2", Redundancy{CodedK: 2, CodedN: 4, Margin: 0.2}, true},
		{"2@0.6", Redundancy{}, false},
		{"2@-0.1", Redundancy{}, false},
		{"2@x", Redundancy{}, false},
		{"off@0.1", Redundancy{}, false},
		{"1", Redundancy{}, false},
		{"0", Redundancy{}, false},
		{"-2", Redundancy{}, false},
		{"65", Redundancy{}, false},
		{"coded:0", Redundancy{}, false},
		{"coded:4of2", Redundancy{}, false},
		{"coded:4of4", Redundancy{}, false},
		{"coded:xof2", Redundancy{}, false},
		{"coded:", Redundancy{}, false},
		{"replicated", Redundancy{}, false},
	}
	for _, tc := range cases {
		got, err := ParseRedundancy(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseRedundancy(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseRedundancy(%q) accepted as %+v", tc.in, got)
		}
	}
	if s := (Redundancy{Replicas: 3}).String(); s != "replicated-3" {
		t.Errorf("String = %q", s)
	}
	if s := (Redundancy{CodedK: 2, CodedN: 4}).String(); s != "coded-2of4" {
		t.Errorf("String = %q", s)
	}
	if s := (Redundancy{}).String(); s != "off" {
		t.Errorf("String = %q", s)
	}
	if err := (Redundancy{Replicas: 2, CodedK: 1, CodedN: 2}).Validate(); err == nil {
		t.Error("mixed scheme accepted")
	}
}

// TestPlanRedundantReplicated pins the replicated plan's shape: like-speed
// pairs, whole units on every replica, exact 2× dispatch overhead, and a
// probe-scaled makespan landing on the lifespan.
func TestPlanRedundantReplicated(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.9, 0.3, 0.5, 0.31, 0.52, 0.88}
	const L = 1200.0
	pr, asn, err := PlanRedundant(m, p, L, Redundancy{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Speed-sorted pairs: (1,3), (2,4), (5,0).
	wantPairs := [][2]int{{1, 3}, {2, 4}, {5, 0}}
	if len(asn.Units) != 3 {
		t.Fatalf("%d units, want 3", len(asn.Units))
	}
	for j, unit := range asn.Units {
		if len(unit) != 2 || asn.Need[j] != 1 {
			t.Fatalf("unit %d: members %v need %d", j, unit, asn.Need[j])
		}
		if pr.Order[unit[0]] != wantPairs[j][0] || pr.Order[unit[1]] != wantPairs[j][1] {
			t.Fatalf("unit %d on machines %d,%d; want %v", j,
				pr.Order[unit[0]], pr.Order[unit[1]], wantPairs[j])
		}
		if pr.Alloc[unit[0]] != asn.Unit[j] || pr.Alloc[unit[1]] != asn.Unit[j] {
			t.Fatalf("unit %d: replica shares %v,%v ≠ unit %v", j,
				pr.Alloc[unit[0]], pr.Alloc[unit[1]], asn.Unit[j])
		}
	}
	res, err := RunCEPRedundant(m, p, pr, asn, fault.Plan{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.UsefulBy(L); got != res.Useful || got <= 0 {
		t.Fatalf("useful by L %v vs total %v", got, res.Useful)
	}
	if math.Abs(res.Overhead-2) > 1e-9 {
		t.Fatalf("replicated-2 empty-plan overhead %v, want 2", res.Overhead)
	}
	if math.Abs(res.Makespan-L) > 1e-6*L {
		t.Fatalf("makespan %v not scaled to lifespan %v", res.Makespan, L)
	}
}

// TestPlanRedundantCoded pins the coded plan: n-wide groups, unit split
// into need equal shards, completion at the k-th return.
func TestPlanRedundantCoded(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.5, 0.6, 0.7, 0.8, 0.9, 1, 0.4, 0.3}
	const L = 2000.0
	red := Redundancy{CodedK: 2, CodedN: 4}
	pr, asn, err := PlanRedundant(m, p, L, red)
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Units) != 2 {
		t.Fatalf("%d units, want 2", len(asn.Units))
	}
	for j, unit := range asn.Units {
		if len(unit) != 4 || asn.Need[j] != 2 {
			t.Fatalf("unit %d: %d members need %d", j, len(unit), asn.Need[j])
		}
		for _, k := range unit {
			if want := asn.Unit[j] / 2; pr.Alloc[k] != want {
				t.Fatalf("unit %d shard %v, want %v", j, pr.Alloc[k], want)
			}
		}
	}
	res, err := RunCEPRedundant(m, p, pr, asn, fault.Plan{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Empty plan: all 4 shards return; the unit completed at the 2nd.
	for j, u := range res.Units {
		if u.Returns != 4 {
			t.Fatalf("unit %d: %d returns, want 4", j, u.Returns)
		}
		var arrivals []float64
		for _, k := range u.Members {
			arrivals = append(arrivals, res.Computers[k].ResultsAt)
		}
		sort.Float64s(arrivals)
		if u.CompletedAt != arrivals[1] {
			t.Fatalf("unit %d completed at %v, want 2nd arrival %v", j, u.CompletedAt, arrivals[1])
		}
	}
	if math.Abs(res.Overhead-2) > 1e-9 { // n/k = 4/2
		t.Fatalf("coded-2of4 overhead %v, want 2", res.Overhead)
	}
}

// TestRedundantSurvivesReplicaCrash: a crashed replica costs nothing —
// the unit completes through its partner, work credited exactly once.
func TestRedundantSurvivesReplicaCrash(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.5, 0.5}
	const L = 600.0
	pr, asn, err := PlanRedundant(m, p, L, Redundancy{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Crash, Computer: 1, At: L / 10}}}
	res, err := RunCEPRedundant(m, p, pr, asn, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Units) != 1 || res.Units[0].Returns != 1 {
		t.Fatalf("unit returns %+v, want exactly the surviving replica", res.Units)
	}
	if res.Useful != asn.Unit[0] {
		t.Fatalf("useful %v, want the full unit %v", res.Useful, asn.Unit[0])
	}
	// The same plan with no redundancy loses machine 1's whole allocation.
	prOff, err := OptimalFIFO(m, p, L)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunCEPFaulty(m, p, prOff, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if off.Lost <= 0 {
		t.Fatalf("unredundant run lost %v, expected a real loss", off.Lost)
	}
}

// TestRunCEPRedundantExactlyOnceRace is the -race stress of the exactly-
// once invariant: concurrent simulations over shared inputs must each
// credit every unit exactly at its Need-th completed return — never
// zero, never twice — and the Kahan total must equal the per-unit sum.
func TestRunCEPRedundantExactlyOnceRace(t *testing.T) {
	m := model.Table1()
	rng := stats.NewRNG(42)
	p := profile.RandomNormalized(rng, 12)
	const L = 1800.0
	pr, asn, err := PlanRedundant(m, p, L, Redundancy{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Crash, Computer: 2, At: 300},
		{Kind: fault.Slowdown, Computer: 5, At: 100, Factor: 40},
		{Kind: fault.Outage, Computer: 7, At: 50, Until: 1200},
		{Kind: fault.Blackout, At: 400, Until: 450},
	}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunCEPRedundant(m, p, pr, asn, plan, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			var sum stats.KahanSum
			for j, u := range res.Units {
				completed := 0
				var arrivals []float64
				for _, k := range u.Members {
					if res.Computers[k].Fate == FateReturned {
						completed++
						arrivals = append(arrivals, res.Computers[k].ResultsAt)
					}
				}
				if completed != u.Returns {
					t.Errorf("unit %d: %d returned traces vs %d counted", j, completed, u.Returns)
				}
				if u.Returns >= u.Need {
					sort.Float64s(arrivals)
					if u.CompletedAt != arrivals[u.Need-1] {
						t.Errorf("unit %d completed at %v, want the need-th arrival %v",
							j, u.CompletedAt, arrivals[u.Need-1])
					}
					sum.Add(u.Work)
				} else if !math.IsInf(u.CompletedAt, 1) {
					t.Errorf("unit %d short of need but completed at %v", j, u.CompletedAt)
				}
			}
			if res.Useful != sum.Sum() {
				t.Errorf("useful %v ≠ per-unit sum %v: a unit credited twice or dropped",
					res.Useful, sum.Sum())
			}
		}()
	}
	wg.Wait()
}
