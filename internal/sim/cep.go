package sim

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Protocol is a concrete worksharing protocol: the startup order in which
// the server serves the cluster's computers, and the work allocated to
// each. Order[k] is the (0-based) computer index served k-th; Alloc[k] is
// the work, in work units, sent to that computer.
type Protocol struct {
	Order []int
	Alloc []float64
}

// Validate checks the protocol against an n-computer cluster: Order must be
// a permutation of [0,n) and every allocation positive.
func (pr Protocol) Validate(n int) error {
	if len(pr.Order) != n || len(pr.Alloc) != n {
		return fmt.Errorf("sim: protocol sized %d/%d for an %d-computer cluster", len(pr.Order), len(pr.Alloc), n)
	}
	seen := make([]bool, n)
	for _, id := range pr.Order {
		if id < 0 || id >= n || seen[id] {
			return fmt.Errorf("sim: startup order %v is not a permutation of [0,%d)", pr.Order, n)
		}
		seen[id] = true
	}
	for k, w := range pr.Alloc {
		if !(w > 0) || math.IsInf(w, 0) || math.IsNaN(w) {
			return fmt.Errorf("sim: allocation %d is %v, must be positive and finite", k, w)
		}
	}
	return nil
}

// ComputerTrace records one computer's simulated lifecycle.
type ComputerTrace struct {
	ID          int     // index into the profile
	Rho         float64 // nominal ρ
	EffRho      float64 // ρ actually simulated (≠ Rho under jitter)
	Work        float64 // allocation in work units
	RecvStart   float64 // its inbound send begins occupying the channel
	RecvEnd     float64 // work fully arrived
	BusyEnd     float64 // unpack+compute+package finished
	ReturnStart float64 // result message starts transit
	ResultsAt   float64 // results fully arrived at the server
}

// Result is the outcome of simulating a protocol to completion.
type Result struct {
	Completed float64 // total work whose results reached the server
	Makespan  float64 // time the last results arrived
	Events    int     // events processed by the engine
	Computers []ComputerTrace
}

// CompletedBy returns the work completed by time t — the CEP's figure of
// merit for a lifespan L = t. Arrivals within a relative 1e-9 of t count:
// protocols are constructed to finish exactly at L, and a result landing
// one rounding error past the deadline is a float artifact, not a miss
// (under FIFO the last arrival carries the largest allocation, so a strict
// comparison would turn an ulp into a ~30% work loss).
func (r Result) CompletedBy(t float64) float64 {
	cutoff := t * (1 + 1e-9)
	var acc stats.KahanSum
	for _, c := range r.Computers {
		if c.ResultsAt <= cutoff {
			acc.Add(c.Work)
		}
	}
	return acc.Sum()
}

// Options tunes a simulation run.
type Options struct {
	// RhoJitter, if positive, perturbs each computer's effective speed to
	// ρ·(1 + RhoJitter·U) with U uniform on [−1,1] — a robustness study
	// knob: the protocol's allocations are computed from the nominal
	// profile, the world executes the perturbed one.
	RhoJitter float64
	// Seed drives the jitter draw.
	Seed uint64
}

// Validate checks the options; the Run* entry points apply the same check
// inline.
func (opt Options) Validate() error {
	if opt.RhoJitter < 0 || opt.RhoJitter >= 1 {
		return fmt.Errorf("sim: jitter %v outside [0,1)", opt.RhoJitter)
	}
	return nil
}

// RunCEP simulates protocol pr on cluster p under the architectural model m
// and returns the full trace. The simulation always runs to completion;
// use Result.CompletedBy to evaluate a lifespan cutoff.
func RunCEP(m model.Params, p profile.Profile, pr Protocol, opt Options) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	if err := pr.Validate(len(p)); err != nil {
		return Result{}, err
	}
	if opt.RhoJitter < 0 || opt.RhoJitter >= 1 {
		return Result{}, fmt.Errorf("sim: jitter %v outside [0,1)", opt.RhoJitter)
	}

	eff := make([]float64, len(p))
	copy(eff, p)
	if opt.RhoJitter > 0 {
		rng := stats.NewRNG(opt.Seed)
		for i := range eff {
			eff[i] *= 1 + opt.RhoJitter*(2*rng.Float64()-1)
		}
	}

	eng := NewEngine()
	ch := NewChannel(eng)
	a, b, td := m.A(), m.B(), m.TauDelta()

	res := Result{Computers: make([]ComputerTrace, len(pr.Order))}
	var completed stats.KahanSum

	// Enqueue all outbound sends at t = 0 in startup order; the channel's
	// FIFO arbitration serializes them back to back, and any result message
	// becoming ready mid-phase queues behind them — exactly the seriatim
	// protocol of §2.2.
	for k, id := range pr.Order {
		k, id := k, id
		w := pr.Alloc[k]
		res.Computers[k] = ComputerTrace{ID: id, Rho: p[id], EffRho: eff[id], Work: w}
		ch.Acquire(a*w, func(sendStart, recvEnd float64) {
			tr := &res.Computers[k]
			tr.RecvStart, tr.RecvEnd = sendStart, recvEnd
			// The computer is busy unpack+compute+package: B(ρ)·w with the
			// effective speed.
			busy := b * eff[id] * w
			eng.After(busy, func() {
				tr.BusyEnd = eng.Now()
				ch.Acquire(td*w, func(retStart, retEnd float64) {
					tr.ReturnStart, tr.ResultsAt = retStart, retEnd
					completed.Add(w)
					if retEnd > res.Makespan {
						res.Makespan = retEnd
					}
				})
			})
		})
	}
	if err := eng.Run(); err != nil {
		return Result{}, err
	}
	if err := ch.VerifyExclusive(); err != nil {
		return Result{}, err
	}
	res.Completed = completed.Sum()
	res.Events = eng.Processed()
	return res, nil
}

// Utilization summarizes how busy each resource was over the run's
// makespan: per-computer busy fraction and the channel's duty cycle.
type Utilization struct {
	// Computer[i] is the fraction of the makespan computer i (by protocol
	// position) spent in its busy block.
	Computer []float64
	// Channel is the fraction of the makespan the shared channel carried a
	// message.
	Channel float64
	// Mean is the average computer utilization.
	Mean float64
}

// Utilization derives resource usage from the trace.
func (r Result) Utilization() Utilization {
	u := Utilization{Computer: make([]float64, len(r.Computers))}
	if r.Makespan <= 0 {
		return u
	}
	var channelBusy, total stats.KahanSum
	for i, c := range r.Computers {
		busy := c.BusyEnd - c.RecvEnd
		u.Computer[i] = busy / r.Makespan
		total.Add(u.Computer[i])
		channelBusy.Add(c.RecvEnd - c.RecvStart)
		channelBusy.Add(c.ResultsAt - c.ReturnStart)
	}
	u.Channel = channelBusy.Sum() / r.Makespan
	u.Mean = total.Sum() / float64(len(r.Computers))
	return u
}
