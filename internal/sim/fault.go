package sim

import (
	"fmt"
	"math"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Fate classifies what became of one computer's allocation in a faulty run.
type Fate string

// Allocation fates. Only FateReturned contributes completed work: per the
// FIFO semantics of the protocol, a unit of work counts exactly when its
// result message has fully arrived at the server.
const (
	// FateReturned: the results fully reached the server.
	FateReturned Fate = "returned"
	// FateNeverFinished: the computer crashed or stalled forever before
	// finishing its busy block (or the channel died before its work even
	// arrived), so no results were ever produced.
	FateNeverFinished Fate = "never-finished"
	// FateReturnAborted: results were produced but their return transfer
	// never completed (sender crashed mid-transfer, or a permanent blackout
	// swallowed the channel).
	FateReturnAborted Fate = "return-aborted"
)

// FaultComputerTrace is a ComputerTrace plus the allocation's fate. Fields
// after the point of failure are +Inf ("never happened").
type FaultComputerTrace struct {
	ComputerTrace
	Fate Fate
}

// FaultResult is the outcome of simulating a protocol under a fault plan.
type FaultResult struct {
	// Completed is the salvaged work: allocations whose results fully
	// reached the server at any time.
	Completed float64
	// Dispatched is the total work sent out (Σ allocations).
	Dispatched float64
	// Lost is Dispatched − Completed: work destroyed by faults.
	Lost float64
	// Makespan is when the last surviving results arrived.
	Makespan  float64
	Events    int
	Computers []FaultComputerTrace
}

// CompletedBy returns the salvaged work whose results arrived by time t,
// with the same relative tolerance as Result.CompletedBy.
func (r FaultResult) CompletedBy(t float64) float64 {
	cutoff := t * (1 + 1e-9)
	var acc stats.KahanSum
	for _, c := range r.Computers {
		if c.Fate == FateReturned && c.ResultsAt <= cutoff {
			acc.Add(c.Work)
		}
	}
	return acc.Sum()
}

// faultChannel is the shared channel under a fault timeline: FIFO grants
// like Channel, but transfers pause during blackouts and abort when their
// sending computer crashes mid-transfer. done receives the granted
// interval and whether the transfer completed; an aborted transfer
// releases the channel at the abort instant.
type faultChannel struct {
	eng    *Engine
	tl     *fault.Timeline
	freeAt float64
	Busy   []Interval
}

// Acquire requests the channel for dur full-rate time units on behalf of a
// sender that dies at crashT (+Inf for the always-alive server). Requests
// are served in call order.
func (c *faultChannel) Acquire(dur, crashT float64, done func(start, end float64, ok bool)) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative channel occupation %v", dur))
	}
	start := c.eng.Now()
	if c.freeAt > start {
		start = c.freeAt
	}
	if start >= crashT {
		// The sender is dead before the channel frees: the transfer never
		// begins and the channel is not occupied.
		done(start, math.Inf(1), false)
		return
	}
	end := c.tl.ChannelFinish(start, dur)
	if crashT < end {
		// Crash mid-transfer: the partial message is useless, the channel
		// frees at the crash instant.
		c.freeAt = crashT
		c.Busy = append(c.Busy, Interval{start, crashT})
		c.eng.At(crashT, func() { done(start, crashT, false) })
		return
	}
	if math.IsInf(end, 1) {
		// Permanent blackout: the transfer (and the channel) never finish.
		c.freeAt = end
		done(start, end, false)
		return
	}
	c.freeAt = end
	c.Busy = append(c.Busy, Interval{start, end})
	c.eng.At(end, func() { done(start, end, true) })
}

// VerifyExclusive checks that no two granted intervals overlap.
func (c *faultChannel) VerifyExclusive() error {
	for i := 1; i < len(c.Busy); i++ {
		if c.Busy[i].Start < c.Busy[i-1].End-1e-12 {
			return fmt.Errorf("sim: channel intervals overlap: [%v,%v) then [%v,%v)",
				c.Busy[i-1].Start, c.Busy[i-1].End, c.Busy[i].Start, c.Busy[i].End)
		}
	}
	return nil
}

// RunCEPFaulty simulates protocol pr on cluster p under fault plan plan:
// RunCEP's model, with compute progress and channel transfers integrated
// over the plan's piecewise degradation. Work counts only when its results
// have fully arrived at the server (FIFO semantics); everything in flight
// at a crash — unreceived input, unfinished computation, a half-sent result
// message — is lost. With an empty plan the run reproduces RunCEP's trace
// bit-for-bit: the integrator's no-fault path performs the identical
// floating-point operations in the identical event order.
func RunCEPFaulty(m model.Params, p profile.Profile, pr Protocol, plan fault.Plan, opt Options) (FaultResult, error) {
	if err := m.Validate(); err != nil {
		return FaultResult{}, err
	}
	if err := pr.Validate(len(p)); err != nil {
		return FaultResult{}, err
	}
	if opt.RhoJitter < 0 || opt.RhoJitter >= 1 {
		return FaultResult{}, fmt.Errorf("sim: jitter %v outside [0,1)", opt.RhoJitter)
	}
	tl, err := fault.Compile(plan, len(p))
	if err != nil {
		return FaultResult{}, err
	}

	eff := make([]float64, len(p))
	copy(eff, p)
	if opt.RhoJitter > 0 {
		rng := stats.NewRNG(opt.Seed)
		for i := range eff {
			eff[i] *= 1 + opt.RhoJitter*(2*rng.Float64()-1)
		}
	}

	eng := NewEngine()
	ch := &faultChannel{eng: eng, tl: tl}
	a, b, td := m.A(), m.B(), m.TauDelta()

	res := FaultResult{Computers: make([]FaultComputerTrace, len(pr.Order))}
	var completed, dispatched stats.KahanSum

	for k, id := range pr.Order {
		k, id := k, id
		w := pr.Alloc[k]
		dispatched.Add(w)
		res.Computers[k] = FaultComputerTrace{ComputerTrace: ComputerTrace{ID: id, Rho: p[id], EffRho: eff[id], Work: w}}
		ch.Acquire(a*w, math.Inf(1), func(sendStart, recvEnd float64, ok bool) {
			tr := &res.Computers[k]
			tr.RecvStart, tr.RecvEnd = sendStart, recvEnd
			if !ok {
				tr.BusyEnd, tr.ReturnStart, tr.ResultsAt = math.Inf(1), math.Inf(1), math.Inf(1)
				tr.Fate = FateNeverFinished
				return
			}
			busy := b * eff[id] * w
			busyEnd := tl.BusyFinish(id, recvEnd, busy)
			if math.IsInf(busyEnd, 1) {
				tr.BusyEnd, tr.ReturnStart, tr.ResultsAt = math.Inf(1), math.Inf(1), math.Inf(1)
				tr.Fate = FateNeverFinished
				return
			}
			eng.At(busyEnd, func() {
				tr.BusyEnd = eng.Now()
				ch.Acquire(td*w, tl.CrashTime(id), func(retStart, retEnd float64, ok bool) {
					tr.ReturnStart = retStart
					if !ok {
						tr.ResultsAt = math.Inf(1)
						tr.Fate = FateReturnAborted
						return
					}
					tr.ReturnStart, tr.ResultsAt = retStart, retEnd
					tr.Fate = FateReturned
					completed.Add(w)
					if retEnd > res.Makespan {
						res.Makespan = retEnd
					}
				})
			})
		})
	}
	if err := eng.Run(); err != nil {
		return FaultResult{}, err
	}
	if err := ch.VerifyExclusive(); err != nil {
		return FaultResult{}, err
	}
	res.Completed = completed.Sum()
	res.Dispatched = dispatched.Sum()
	res.Lost = res.Dispatched - res.Completed
	res.Events = eng.Processed()
	return res, nil
}
