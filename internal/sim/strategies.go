package sim

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
)

// OptimalFIFO returns the provably optimal protocol for lifespan L (Theorem
// 1): the gap-free FIFO allocations of package schedule, served in the
// profile's own order.
func OptimalFIFO(m model.Params, p profile.Profile, lifespan float64) (Protocol, error) {
	alloc, err := schedule.Allocations(m, p, lifespan)
	if err != nil {
		return Protocol{}, err
	}
	return Protocol{Order: identity(len(p)), Alloc: alloc}, nil
}

// EqualSplit returns the naive baseline protocol that hands every computer
// the same amount of work, scaled so the simulated makespan is exactly L.
func EqualSplit(m model.Params, p profile.Profile, lifespan float64) (Protocol, Result, error) {
	weights := make([]float64, len(p))
	for i := range weights {
		weights[i] = 1
	}
	return ScaleToLifespan(m, p, identity(len(p)), weights, lifespan)
}

// ProportionalSplit returns the folk-wisdom baseline that allocates work
// proportionally to computer speed (wᵢ ∝ 1/ρᵢ), scaled so the simulated
// makespan is exactly L. It ignores communication costs, which is exactly
// what the optimal FIFO allocations do not do.
func ProportionalSplit(m model.Params, p profile.Profile, lifespan float64) (Protocol, Result, error) {
	weights := make([]float64, len(p))
	for i, rho := range p {
		weights[i] = 1 / rho
	}
	return ScaleToLifespan(m, p, identity(len(p)), weights, lifespan)
}

// ScaleToLifespan runs the protocol defined by (order, weights) once,
// exploits the model's positive homogeneity (every event time scales
// linearly with a uniform scaling of the allocations) to rescale the
// weights so the makespan lands exactly on L, and returns the scaled
// protocol with its simulation result.
func ScaleToLifespan(m model.Params, p profile.Profile, order []int, weights []float64, lifespan float64) (Protocol, Result, error) {
	if !(lifespan > 0) {
		return Protocol{}, Result{}, fmt.Errorf("sim: lifespan %v must be positive", lifespan)
	}
	probe := Protocol{Order: order, Alloc: weights}
	r, err := RunCEP(m, p, probe, Options{})
	if err != nil {
		return Protocol{}, Result{}, err
	}
	if !(r.Makespan > 0) {
		return Protocol{}, Result{}, fmt.Errorf("sim: probe run produced makespan %v", r.Makespan)
	}
	c := lifespan / r.Makespan
	scaled := Protocol{Order: order, Alloc: make([]float64, len(weights))}
	for i, w := range weights {
		scaled.Alloc[i] = c * w
	}
	final, err := RunCEP(m, p, scaled, Options{})
	if err != nil {
		return Protocol{}, Result{}, err
	}
	return scaled, final, nil
}

func identity(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
