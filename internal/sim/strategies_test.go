package sim

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestBaselinesHitTheLifespanExactly(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	l := 1000.0
	for name, run := range map[string]func() (Protocol, Result, error){
		"equal":        func() (Protocol, Result, error) { return EqualSplit(m, p, l) },
		"proportional": func() (Protocol, Result, error) { return ProportionalSplit(m, p, l) },
	} {
		_, res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(res.Makespan-l) > 1e-8*l {
			t.Fatalf("%s: makespan %v != %v", name, res.Makespan, l)
		}
	}
}

func TestOptimalFIFOBeatsBaselines(t *testing.T) {
	// The whole point of [1]'s FIFO protocol: it completes strictly more
	// work by L than the naive allocations on heterogeneous clusters.
	m := model.Table1()
	r := stats.NewRNG(313)
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(6)
		p := profile.RandomNormalized(r, n)
		if p.Variance() < 1e-4 {
			continue // nearly homogeneous; margins vanish
		}
		l := 2000.0
		opt, err := OptimalFIFO(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		optRes, err := RunCEP(m, p, opt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, eqRes, err := EqualSplit(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		_, propRes, err := ProportionalSplit(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		if optRes.Completed < eqRes.Completed-1e-6 {
			t.Fatalf("equal split (%v) beat optimal (%v) on %v", eqRes.Completed, optRes.Completed, p)
		}
		if optRes.Completed < propRes.Completed-1e-6 {
			t.Fatalf("proportional split (%v) beat optimal (%v) on %v", propRes.Completed, optRes.Completed, p)
		}
		// Equal split on a genuinely heterogeneous cluster must lose
		// strictly: the slowest computer throttles everyone.
		if p.Slowest()/p.Fastest() > 2 && !(optRes.Completed > eqRes.Completed) {
			t.Fatalf("optimal did not strictly beat equal split on a 2x-spread cluster %v", p)
		}
	}
}

func TestProportionalCloseToOptimalAtTinyCommunication(t *testing.T) {
	// With τ, π → 0 the CEP degenerates and speed-proportional allocation
	// approaches optimality; the gap must be well under 1% at Table 1
	// scales for a small cluster.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	l := 10000.0
	opt, err := OptimalFIFO(m, p, l)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := RunCEP(m, p, opt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, propRes, err := ProportionalSplit(m, p, l)
	if err != nil {
		t.Fatal(err)
	}
	gap := (optRes.Completed - propRes.Completed) / optRes.Completed
	if gap < 0 || gap > 0.01 {
		t.Fatalf("proportional gap %v outside [0, 1%%]", gap)
	}
}

func TestEqualSplitPenaltyGrowsWithHeterogeneity(t *testing.T) {
	m := model.Table1()
	l := 5000.0
	penalty := func(p profile.Profile) float64 {
		opt, err := OptimalFIFO(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		optRes, err := RunCEP(m, p, opt, Options{})
		if err != nil {
			t.Fatal(err)
		}
		_, eqRes, err := EqualSplit(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		return (optRes.Completed - eqRes.Completed) / optRes.Completed
	}
	mild := penalty(profile.MustNew(1, 0.9, 0.8, 0.7))
	severe := penalty(profile.MustNew(1, 0.5, 0.1, 0.05))
	if !(severe > mild) {
		t.Fatalf("equal-split penalty did not grow with heterogeneity: mild %v, severe %v", mild, severe)
	}
}

func TestScaleToLifespanRejectsBadLifespan(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1)
	if _, _, err := ScaleToLifespan(m, p, []int{0}, []float64{1}, 0); err == nil {
		t.Fatal("L=0 accepted")
	}
}

func TestOptimalFIFOMatchesWorkRate(t *testing.T) {
	// Work per unit lifespan from the simulated optimal protocol equals
	// core.WorkRate.
	m := model.Table1()
	p := profile.Linear(6)
	l := 750.0
	proto, err := OptimalFIFO(m, p, l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.Completed / l; math.Abs(rate-core.WorkRate(m, p)) > 1e-9*rate {
		t.Fatalf("sim rate %v != analytic %v", rate, core.WorkRate(m, p))
	}
}
