package sim

import (
	"testing"
)

func TestEngineOrdersEvents(t *testing.T) {
	eng := NewEngine()
	var got []int
	eng.At(3, func() { got = append(got, 3) })
	eng.At(1, func() { got = append(got, 1) })
	eng.At(2, func() { got = append(got, 2) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
	if eng.Processed() != 3 {
		t.Fatalf("processed = %d", eng.Processed())
	}
}

func TestEngineFIFOAmongSimultaneous(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		eng.At(7, func() { got = append(got, i) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestEngineCascadedScheduling(t *testing.T) {
	eng := NewEngine()
	var times []float64
	eng.At(1, func() {
		times = append(times, eng.Now())
		eng.After(2, func() { times = append(times, eng.Now()) })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	eng := NewEngine()
	eng.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(1, func() {})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestChannelSerializes(t *testing.T) {
	eng := NewEngine()
	ch := NewChannel(eng)
	type grant struct{ start, end float64 }
	var grants []grant
	// Three requests issued at t=0 with durations 5, 3, 2: must run
	// back-to-back.
	for _, d := range []float64{5, 3, 2} {
		d := d
		ch.Acquire(d, func(s, e float64) { grants = append(grants, grant{s, e}) })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []grant{{0, 5}, {5, 8}, {8, 10}}
	for i := range want {
		if grants[i] != want[i] {
			t.Fatalf("grants = %v, want %v", grants, want)
		}
	}
	if err := ch.VerifyExclusive(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelGrantsLaterRequestImmediatelyWhenIdle(t *testing.T) {
	eng := NewEngine()
	ch := NewChannel(eng)
	var start float64 = -1
	eng.At(10, func() {
		ch.Acquire(4, func(s, e float64) { start = s })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if start != 10 {
		t.Fatalf("start = %v, want 10", start)
	}
}

func TestChannelPanicsOnNegativeDuration(t *testing.T) {
	eng := NewEngine()
	ch := NewChannel(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	ch.Acquire(-1, func(s, e float64) {})
}

func TestVerifyExclusiveCatchesOverlap(t *testing.T) {
	ch := &Channel{Busy: []Interval{{0, 5}, {4, 6}}}
	if ch.VerifyExclusive() == nil {
		t.Fatal("overlap not caught")
	}
}
