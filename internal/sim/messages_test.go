package sim

import (
	"math"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestRunMessagesSingleRoundMatchesRunCEP(t *testing.T) {
	// One message per computer must reproduce RunCEP exactly.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	proto, err := OptimalFIFO(m, p, 700)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	msgs := make([]Message, len(proto.Order))
	for k, id := range proto.Order {
		msgs[k] = Message{Computer: id, Work: proto.Alloc[k]}
	}
	general, err := RunMessages(m, p, MsgProtocol{Messages: msgs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(general.Makespan-classic.Makespan) > 1e-9*classic.Makespan {
		t.Fatalf("makespans differ: %v vs %v", general.Makespan, classic.Makespan)
	}
	if math.Abs(general.Completed-classic.Completed) > 1e-9*classic.Completed {
		t.Fatalf("completed differ: %v vs %v", general.Completed, classic.Completed)
	}
	for k := range msgs {
		if math.Abs(general.Messages[k].ResultsAt-classic.Computers[k].ResultsAt) > 1e-9*classic.Makespan {
			t.Fatalf("message %d results at %v vs %v", k, general.Messages[k].ResultsAt, classic.Computers[k].ResultsAt)
		}
	}
}

func TestComputerSerializesItsInstallments(t *testing.T) {
	// Two messages to the same computer must process back to back, never
	// overlapping.
	m := model.Table1()
	p := profile.MustNew(0.5)
	mp := MsgProtocol{Messages: []Message{{0, 10}, {0, 20}}}
	r, err := RunMessages(m, p, mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, second := r.Messages[0], r.Messages[1]
	// Second starts processing no earlier than the first finishes.
	if second.BusyEnd-m.B()*0.5*20 < first.BusyEnd-1e-12 {
		t.Fatalf("installments overlapped: first busy end %v, second busy start %v",
			first.BusyEnd, second.BusyEnd-m.B()*0.5*20)
	}
}

func TestMultiInstallmentHitsLifespan(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	for _, k := range []int{1, 2, 5} {
		_, res, err := MultiInstallment(m, p, 1000, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if math.Abs(res.Makespan-1000) > 1e-8*1000 {
			t.Fatalf("k=%d makespan %v", k, res.Makespan)
		}
	}
}

func TestMultiInstallmentSingleEqualsOptimal(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25, 0.125)
	proto, err := OptimalFIFO(m, p, 500)
	if err != nil {
		t.Fatal(err)
	}
	classic, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := MultiInstallment(m, p, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Completed-classic.Completed) > 1e-6*classic.Completed {
		t.Fatalf("k=1 completed %v != single-round %v", res.Completed, classic.Completed)
	}
}

func TestMultiInstallmentHelpsAtExpensiveLinks(t *testing.T) {
	// At grid-scale τ the outbound phase is long; smaller first packages
	// start computers earlier and k > 1 completes strictly more work by L.
	m := model.Params{Tau: 0.05, Pi: 1e-4, Delta: 1}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := profile.MustNew(1, 0.8, 0.6, 0.4)
	const l = 100.0
	_, k1, err := MultiInstallment(m, p, l, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, k4, err := MultiInstallment(m, p, l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !(k4.Completed > k1.Completed*1.0001) {
		t.Fatalf("4 installments (%v) did not beat 1 (%v) at τ=0.05", k4.Completed, k1.Completed)
	}
	// At µs links the difference must be negligible either way.
	cheap := model.Table1()
	_, c1, err := MultiInstallment(cheap, p, l, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, c4, err := MultiInstallment(cheap, p, l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c4.Completed-c1.Completed)/c1.Completed > 1e-3 {
		t.Fatalf("installments changed µs-link work by %v", math.Abs(c4.Completed-c1.Completed)/c1.Completed)
	}
}

func TestMultiInstallmentDiminishingReturns(t *testing.T) {
	// Work by L is (weakly) increasing in k at expensive links; the gains
	// shrink as k grows.
	m := model.Params{Tau: 0.05, Pi: 1e-4, Delta: 1}
	p := profile.MustNew(1, 0.8, 0.6, 0.4)
	prev := 0.0
	var gains []float64
	for _, k := range []int{1, 2, 4, 8} {
		_, res, err := MultiInstallment(m, p, 100, k)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 {
			gains = append(gains, res.Completed-prev)
			if res.Completed < prev-1e-6 {
				t.Fatalf("k=%d reduced work: %v after %v", k, res.Completed, prev)
			}
		}
		prev = res.Completed
	}
	if !(gains[0] > gains[len(gains)-1]) {
		t.Fatalf("gains did not diminish: %v", gains)
	}
}

func TestRunMessagesValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	cases := []MsgProtocol{
		{},
		{Messages: []Message{{Computer: 2, Work: 1}}},
		{Messages: []Message{{Computer: 0, Work: 0}}},
		{Messages: []Message{{Computer: 0, Work: math.NaN()}}},
	}
	for i, mp := range cases {
		if _, err := RunMessages(m, p, mp, Options{}); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, _, err := MultiInstallment(m, p, 100, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMsgCompletedBy(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1)
	mp := MsgProtocol{Messages: []Message{{0, 5}, {0, 7}}}
	r, err := RunMessages(m, p, mp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CompletedBy(r.Makespan); math.Abs(got-12) > 1e-9 {
		t.Fatalf("CompletedBy(makespan) = %v", got)
	}
	mid := (r.Messages[0].ResultsAt + r.Messages[1].ResultsAt) / 2
	if got := r.CompletedBy(mid); math.Abs(got-5) > 1e-9 {
		t.Fatalf("CompletedBy(mid) = %v, want 5", got)
	}
}
