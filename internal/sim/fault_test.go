package sim

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// TestFaultyEmptyPlanBitForBit is the acceptance criterion: with no faults,
// the fault-aware integrator must reproduce RunCEP exactly — every trace
// field, the makespan, the work total and the event count, compared with ==.
func TestFaultyEmptyPlanBitForBit(t *testing.T) {
	rng := stats.NewRNG(7)
	m := model.Table1()
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		p := profile.RandomNormalized(rng, n)
		var pr Protocol
		var err error
		switch trial % 3 {
		case 0:
			pr, err = OptimalFIFO(m, p, 3600)
		case 1:
			pr, _, err = EqualSplit(m, p, 3600)
		default:
			alloc := make([]float64, n)
			for i := range alloc {
				alloc[i] = rng.InRange(1, 1000)
			}
			pr = Protocol{Order: rng.Perm(n), Alloc: alloc}
		}
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{RhoJitter: 0.2, Seed: uint64(trial)}
		if trial%2 == 0 {
			opt = Options{}
		}
		want, err := RunCEP(m, p, pr, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunCEPFaulty(m, p, pr, fault.Plan{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		if got.Completed != want.Completed || got.Makespan != want.Makespan || got.Events != want.Events {
			t.Fatalf("trial %d: summary diverges: got (%v, %v, %d), want (%v, %v, %d)",
				trial, got.Completed, got.Makespan, got.Events, want.Completed, want.Makespan, want.Events)
		}
		for k := range want.Computers {
			g, w := got.Computers[k].ComputerTrace, want.Computers[k]
			if g != w {
				t.Fatalf("trial %d computer %d: trace diverges:\ngot  %+v\nwant %+v", trial, k, g, w)
			}
			if got.Computers[k].Fate != FateReturned {
				t.Fatalf("trial %d computer %d: fate %q under empty plan", trial, k, got.Computers[k].Fate)
			}
		}
		if got.Lost != 0 {
			t.Fatalf("trial %d: lost %v work under empty plan", trial, got.Lost)
		}
	}
}

func TestFaultyCrashLosesUnreturnedWork(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	pr, err := OptimalFIFO(m, p, 3600)
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunCEP(m, p, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Crash computer 1 halfway through its busy block: its allocation is
	// lost, the other two are untouched (they do not share its channel slots
	// in a way a missing return could hurt).
	mid := (free.Computers[1].RecvEnd + free.Computers[1].BusyEnd) / 2
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Crash, Computer: 1, At: mid}}}
	got, err := RunCEPFaulty(m, p, pr, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Computers[1].Fate != FateNeverFinished {
		t.Fatalf("crashed computer fate %q", got.Computers[1].Fate)
	}
	if !math.IsInf(got.Computers[1].ResultsAt, 1) {
		t.Fatalf("crashed computer ResultsAt %v", got.Computers[1].ResultsAt)
	}
	wantSalvage := free.Computers[0].Work + free.Computers[2].Work
	if math.Abs(got.Completed-wantSalvage) > 1e-9*wantSalvage {
		t.Fatalf("salvaged %v, want %v", got.Completed, wantSalvage)
	}
	if math.Abs(got.Lost-free.Computers[1].Work) > 1e-9*free.Computers[1].Work {
		t.Fatalf("lost %v, want %v", got.Lost, free.Computers[1].Work)
	}
	// Crash mid-return-transfer: results were computed but never fully
	// arrived — still lost.
	midRet := (free.Computers[1].ReturnStart + free.Computers[1].ResultsAt) / 2
	plan = fault.Plan{Faults: []fault.Fault{{Kind: fault.Crash, Computer: 1, At: midRet}}}
	got, err = RunCEPFaulty(m, p, pr, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Computers[1].Fate != FateReturnAborted {
		t.Fatalf("mid-return crash fate %q", got.Computers[1].Fate)
	}
	// Crash after the results arrived: nothing is lost.
	plan = fault.Plan{Faults: []fault.Fault{{Kind: fault.Crash, Computer: 1, At: free.Computers[1].ResultsAt * 1.01}}}
	got, err = RunCEPFaulty(m, p, pr, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Lost != 0 || got.Computers[1].Fate != FateReturned {
		t.Fatalf("post-return crash lost %v work (fate %q)", got.Lost, got.Computers[1].Fate)
	}
}

func TestFaultyOutageDelaysButCompletes(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	pr, err := OptimalFIFO(m, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunCEP(m, p, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Freeze computer 0 for 100 time units in the middle of its busy block.
	mid := (free.Computers[0].RecvEnd + free.Computers[0].BusyEnd) / 2
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Outage, Computer: 0, At: mid, Until: mid + 100}}}
	got, err := RunCEPFaulty(m, p, pr, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Lost != 0 {
		t.Fatalf("outage lost %v work; the sim runs to completion", got.Lost)
	}
	if d := got.Computers[0].BusyEnd - free.Computers[0].BusyEnd; math.Abs(d-100) > 1e-9 {
		t.Fatalf("busy end shifted by %v, want 100", d)
	}
	// But by the lifespan cutoff, the late results no longer count.
	if got.CompletedBy(1000) >= free.CompletedBy(1000) {
		t.Fatalf("outage did not reduce on-time work: %v vs %v", got.CompletedBy(1000), free.CompletedBy(1000))
	}
}

func TestFaultySlowdownStretchesBusyBlock(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	pr, err := OptimalFIFO(m, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunCEP(m, p, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Halve computer 1's speed from t = 0: its busy block doubles.
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Slowdown, Computer: 1, At: 0, Factor: 2}}}
	got, err := RunCEPFaulty(m, p, pr, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	freeBusy := free.Computers[1].BusyEnd - free.Computers[1].RecvEnd
	gotBusy := got.Computers[1].BusyEnd - got.Computers[1].RecvEnd
	if math.Abs(gotBusy-2*freeBusy) > 1e-9*freeBusy {
		t.Fatalf("slowed busy block %v, want %v", gotBusy, 2*freeBusy)
	}
}

func TestFaultyBlackoutPausesChannel(t *testing.T) {
	m := model.Figs34() // expensive links make transfers long enough to hit
	p := profile.MustNew(1, 0.5)
	pr, err := OptimalFIFO(m, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunCEP(m, p, pr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Black out the channel in the middle of the first outbound send.
	mid := (free.Computers[0].RecvStart + free.Computers[0].RecvEnd) / 2
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Blackout, At: mid, Until: mid + 50}}}
	got, err := RunCEPFaulty(m, p, pr, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := got.Computers[0].RecvEnd - free.Computers[0].RecvEnd; math.Abs(d-50) > 1e-9 {
		t.Fatalf("first receive shifted by %v, want 50", d)
	}
	if got.Lost != 0 {
		t.Fatalf("transient blackout lost %v work", got.Lost)
	}
	// A permanent blackout before any return strands everything.
	plan = fault.Plan{Faults: []fault.Fault{{Kind: fault.Blackout, At: free.Computers[1].RecvEnd, Until: math.Inf(1)}}}
	got, err = RunCEPFaulty(m, p, pr, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Completed != 0 {
		t.Fatalf("permanent blackout salvaged %v", got.Completed)
	}
}

// TestChaosFaultProperties is the chaos property test of the issue: for any
// seeded random fault plan, (1) work salvaged by L never exceeds the
// fault-free optimum W(L;P), and (2) it is at least the salvage of the
// plan's crash-only lower bound (everything dies at the first onset) —
// sound because a faulty execution is identical to the fault-free one
// before the first onset. Accounting must balance throughout.
func TestChaosFaultProperties(t *testing.T) {
	rng := stats.NewRNG(2026)
	m := model.Table1()
	const L = 3600.0
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(16)
		p := profile.RandomNormalized(rng, n)
		pr, err := OptimalFIFO(m, p, L)
		if err != nil {
			t.Fatal(err)
		}
		plan := fault.Random(rng, n, L, rng.Intn(8))
		res, err := RunCEPFaulty(m, p, pr, plan, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		optimum := core.W(m, p, L)
		salvaged := res.CompletedBy(L)
		if salvaged > optimum*(1+1e-9) {
			t.Fatalf("trial %d: salvaged %v exceeds fault-free optimum %v", trial, salvaged, optimum)
		}
		lbPlan := plan.CrashOnlyLowerBound(n)
		lb, err := RunCEPFaulty(m, p, pr, lbPlan, Options{})
		if err != nil {
			t.Fatalf("trial %d lower bound: %v", trial, err)
		}
		if floor := lb.CompletedBy(L); salvaged < floor*(1-1e-12) {
			t.Fatalf("trial %d: salvaged %v below crash-only floor %v\nplan: %+v", trial, salvaged, floor, plan)
		}
		if math.Abs(res.Completed+res.Lost-res.Dispatched) > 1e-9*res.Dispatched {
			t.Fatalf("trial %d: accounting %v + %v ≠ %v", trial, res.Completed, res.Lost, res.Dispatched)
		}
		for _, c := range res.Computers {
			if c.Fate == FateReturned && math.IsInf(c.ResultsAt, 1) {
				t.Fatalf("trial %d: returned allocation with infinite ResultsAt", trial)
			}
			if c.Fate != FateReturned && !math.IsInf(c.ResultsAt, 1) {
				t.Fatalf("trial %d: lost allocation with finite ResultsAt %v", trial, c.ResultsAt)
			}
		}
	}
}
