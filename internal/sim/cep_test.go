package sim

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/stats"
)

func TestSimMatchesAnalyticSchedule(t *testing.T) {
	// Executing the optimal FIFO allocations event by event must reproduce
	// the analytic schedule: same makespan (= L), same work, same
	// per-computer timings.
	m := model.Table1()
	r := stats.NewRNG(307)
	for trial := 0; trial < 50; trial++ {
		p := profile.RandomNormalized(r, 1+r.Intn(8))
		l := r.InRange(100, 1e4)
		sched, err := schedule.BuildFIFO(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := OptimalFIFO(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCEP(m, p, proto, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Makespan-l) > 1e-8*l {
			t.Fatalf("sim makespan %v != L %v for %v", res.Makespan, l, p)
		}
		if math.Abs(res.Completed-sched.TotalWork) > 1e-9*sched.TotalWork {
			t.Fatalf("sim work %v != schedule work %v", res.Completed, sched.TotalWork)
		}
		for k, tr := range res.Computers {
			ct := sched.Computers[k]
			if math.Abs(tr.RecvEnd-ct.Segment(schedule.SegReceive).End) > 1e-8*l {
				t.Fatalf("computer %d recv end %v != %v", k, tr.RecvEnd, ct.Segment(schedule.SegReceive).End)
			}
			if math.Abs(tr.ResultsAt-ct.ResultsArrive) > 1e-8*l {
				t.Fatalf("computer %d results %v != %v", k, tr.ResultsAt, ct.ResultsArrive)
			}
		}
	}
}

func TestSimMatchesTheorem2(t *testing.T) {
	// End to end: simulated work under optimal allocations equals Theorem
	// 2's W(L;P).
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	l := 3600.0
	proto, err := OptimalFIFO(m, p, l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := core.W(m, p, l)
	if math.Abs(res.Completed-want) > 1e-9*want {
		t.Fatalf("simulated %v, Theorem 2 says %v", res.Completed, want)
	}
}

func TestSimOrderInvariance(t *testing.T) {
	// Theorem 1.2, verified in the event-driven world: any startup order
	// with the matching gap-free allocations completes the same work by L.
	m := model.Table1()
	r := stats.NewRNG(311)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(6)
		p := profile.RandomNormalized(r, n)
		l := 500.0
		base, err := OptimalFIFO(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := RunCEP(m, p, base, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Allocations for the permuted startup order.
		perm := r.Perm(n)
		permuted := p.Permuted(perm)
		alloc, err := schedule.Allocations(m, permuted, l)
		if err != nil {
			t.Fatal(err)
		}
		proto := Protocol{Order: perm, Alloc: alloc}
		ra, err := RunCEP(m, p, proto, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rb.Completed-ra.Completed) > 1e-9*rb.Completed {
			t.Fatalf("work depends on startup order: %v vs %v (perm %v)", rb.Completed, ra.Completed, perm)
		}
		if math.Abs(ra.Makespan-l) > 1e-8*l {
			t.Fatalf("permuted protocol missed the lifespan: %v vs %v", ra.Makespan, l)
		}
	}
}

func TestCompletedBy(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	proto, err := OptimalFIFO(m, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CompletedBy(res.Makespan + 1); math.Abs(got-res.Completed) > 1e-12 {
		t.Fatalf("CompletedBy(makespan) = %v, want %v", got, res.Completed)
	}
	// Before the first result arrives, nothing is complete.
	first := res.Computers[0].ResultsAt
	if got := res.CompletedBy(first * 0.5); got != 0 {
		t.Fatalf("CompletedBy(early) = %v, want 0", got)
	}
	// Between the two arrivals exactly one allocation counts.
	mid := (res.Computers[0].ResultsAt + res.Computers[1].ResultsAt) / 2
	if got := res.CompletedBy(mid); math.Abs(got-res.Computers[0].Work) > 1e-12 {
		t.Fatalf("CompletedBy(mid) = %v, want %v", got, res.Computers[0].Work)
	}
}

func TestProtocolValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	bad := []Protocol{
		{Order: []int{0}, Alloc: []float64{1, 2}},
		{Order: []int{0, 0}, Alloc: []float64{1, 2}},
		{Order: []int{0, 2}, Alloc: []float64{1, 2}},
		{Order: []int{0, 1}, Alloc: []float64{1, -2}},
		{Order: []int{0, 1}, Alloc: []float64{1, 0}},
		{Order: []int{0, 1}, Alloc: []float64{1, math.NaN()}},
	}
	for i, proto := range bad {
		if _, err := RunCEP(m, p, proto, Options{}); err == nil {
			t.Fatalf("bad protocol %d accepted", i)
		}
	}
}

func TestRunCEPRejectsBadJitter(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1)
	proto := Protocol{Order: []int{0}, Alloc: []float64{1}}
	for _, j := range []float64{-0.1, 1, 2} {
		if _, err := RunCEP(m, p, proto, Options{RhoJitter: j}); err == nil {
			t.Fatalf("jitter %v accepted", j)
		}
	}
}

func TestJitterPerturbsDeterministically(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	proto, err := OptimalFIFO(m, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := RunCEP(m, p, proto, Options{RhoJitter: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := RunCEP(m, p, proto, Options{RhoJitter: 0.2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if j1.Makespan != j2.Makespan {
		t.Fatal("jittered runs with the same seed differ")
	}
	if j1.Makespan == clean.Makespan {
		t.Fatal("jitter had no effect")
	}
	for i, tr := range j1.Computers {
		if tr.EffRho == tr.Rho {
			t.Fatalf("computer %d effective speed unperturbed", i)
		}
	}
}

func TestChannelNeverDoubleBookedUnderContention(t *testing.T) {
	// Force contention with deliberately unbalanced allocations and verify
	// the exclusivity invariant still holds.
	m := model.Table1()
	p := profile.MustNew(1, 0.001, 0.001, 0.001)
	proto := Protocol{Order: []int{0, 1, 2, 3}, Alloc: []float64{1, 1000, 1000, 1000}}
	res, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3001 {
		t.Fatalf("completed %v, want full 3001", res.Completed)
	}
	// Fast computers finish almost together; their returns must serialize:
	// each later return starts no earlier than the previous ends.
	for i := 2; i < 4; i++ {
		prev, cur := res.Computers[i-1], res.Computers[i]
		if cur.ReturnStart < prev.ResultsAt-1e-12 {
			t.Fatalf("returns overlap: computer %d starts at %v before %v", i, cur.ReturnStart, prev.ResultsAt)
		}
	}
}

func TestUtilization(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	proto, err := OptimalFIFO(m, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	u := res.Utilization()
	if len(u.Computer) != 3 {
		t.Fatalf("computers = %d", len(u.Computer))
	}
	for i, frac := range u.Computer {
		// Under the gap-free optimal protocol every computer is busy nearly
		// the whole lifespan (receive + return slices are µs-scale).
		if frac < 0.99 || frac > 1 {
			t.Fatalf("computer %d utilization %v, want ≈1", i, frac)
		}
	}
	if u.Mean < 0.99 || u.Mean > 1 {
		t.Fatalf("mean utilization %v", u.Mean)
	}
	// The channel, by contrast, is nearly idle at these parameters.
	if u.Channel > 0.01 {
		t.Fatalf("channel duty cycle %v, want ≈0", u.Channel)
	}
}

func TestUtilizationEmptyMakespan(t *testing.T) {
	u := Result{}.Utilization()
	if u.Channel != 0 || u.Mean != 0 {
		t.Fatalf("zero-makespan utilization: %+v", u)
	}
}

func TestSimScalingHomogeneity(t *testing.T) {
	// Metamorphic property: scaling every allocation by c scales every
	// event time by c (the model has no fixed costs).
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	proto, err := OptimalFIFO(m, p, 500)
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunCEP(m, p, proto, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const c = 3.5
	scaled := Protocol{Order: proto.Order, Alloc: make([]float64, len(proto.Alloc))}
	for i, w := range proto.Alloc {
		scaled.Alloc[i] = c * w
	}
	big, err := RunCEP(m, p, scaled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(big.Makespan-c*base.Makespan) > 1e-9*big.Makespan {
		t.Fatalf("makespan not homogeneous: %v vs %v×%v", big.Makespan, c, base.Makespan)
	}
	for k := range base.Computers {
		if math.Abs(big.Computers[k].ResultsAt-c*base.Computers[k].ResultsAt) > 1e-9*big.Makespan {
			t.Fatalf("computer %d results time not homogeneous", k)
		}
	}
}
