package sim

import (
	"context"
	"math"
	"testing"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// TestSimulateElasticMatchesFaultyOnJoinFreePlans: on plans without joins
// the salvage policies are SimulateFaulty, exactly.
func TestSimulateElasticMatchesFaultyOnJoinFreePlans(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.4, 0.8, 0.55}
	const L = 1200.0
	plan := fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Outage, Computer: 1, At: 100, Until: 500},
		{Kind: fault.Slowdown, Computer: 0, At: 300, Factor: 4},
		{Kind: fault.Crash, Computer: 2, At: 800},
	}}
	for _, replan := range []bool{false, true} {
		want, err := SimulateFaulty(context.Background(), m, p, L, plan, replan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SimulateElastic(context.Background(), m, p, L, plan, ElasticPolicy{Replan: replan}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Useful != want.Salvaged || got.Dispatched != want.Dispatched || got.Events != want.Events {
			t.Fatalf("replan=%v: elastic (%v, %v, %d) ≠ faulty (%v, %v, %d)", replan,
				got.Useful, got.Dispatched, got.Events, want.Salvaged, want.Dispatched, want.Events)
		}
		if got.FaultFree != want.FaultFree {
			t.Fatalf("replan=%v: fault-free %v ≠ %v", replan, got.FaultFree, want.FaultFree)
		}
	}
}

// TestSimulateFaultyRejectsJoins: elastic plans must go through
// SimulateElastic; the crash-only pipeline refuses them.
func TestSimulateFaultyRejectsJoins(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.5, 0.5}
	plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Join, Computer: 2, At: 10, Rho: 0.5}}}
	if _, err := SimulateFaulty(context.Background(), m, p, 100, plan, true, Options{}); err == nil {
		t.Fatal("SimulateFaulty accepted a join plan")
	}
}

// TestElasticPolicyValidate pins the policy algebra: replan and
// redundancy are exclusive, and String names every mode.
func TestElasticPolicyValidate(t *testing.T) {
	if err := (ElasticPolicy{Replan: true, Redundancy: Redundancy{Replicas: 2}}).Validate(); err == nil {
		t.Fatal("replan+redundancy accepted")
	}
	if err := (ElasticPolicy{Replan: true}).Validate(); err != nil {
		t.Fatal(err)
	}
	for want, pol := range map[string]ElasticPolicy{
		"salvage-ride":   {},
		"salvage-replan": {Replan: true},
		"replicated-2":   {Redundancy: Redundancy{Replicas: 2}},
		"coded-2of3":     {Redundancy: Redundancy{CodedK: 2, CodedN: 3}},
	} {
		if got := pol.String(); got != want {
			t.Errorf("policy %+v → %q, want %q", pol, got, want)
		}
	}
}

// TestSimulateElasticReplanRecruitsJoins: a fast machine joining
// mid-lifespan shows up as a Joined decision, gets folded into a fresh
// round, and lifts salvage above the ride policy that ignores it.
func TestSimulateElasticReplanRecruitsJoins(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.95, 0.9}
	const L = 2000.0
	plan := fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Join, Computer: 2, At: 200, Rho: 0.3},
		{Kind: fault.Join, Computer: 3, At: 200, Rho: 0.35},
	}}
	ride, err := SimulateElastic(context.Background(), m, p, L, plan, ElasticPolicy{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateElastic(context.Background(), m, p, L, plan, ElasticPolicy{Replan: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Useful <= ride.Useful {
		t.Fatalf("replan %v did not beat ride %v despite fast joiners", rep.Useful, ride.Useful)
	}
	if len(rep.Decisions) != 1 {
		t.Fatalf("%d decisions, want 1", len(rep.Decisions))
	}
	dec := rep.Decisions[0]
	if dec.At != 200 || len(dec.Joined) != 2 || dec.Joined[0] != 2 || dec.Joined[1] != 3 {
		t.Fatalf("decision %+v, want both machines joined at 200", dec)
	}
	if len(dec.Restored) != 0 || len(dec.Dropped) != 0 {
		t.Fatalf("joiners misclassified: %+v", dec)
	}
	if !dec.Replanned {
		t.Fatal("replanner ignored two fast joiners")
	}
	// Joins can push useful work past the base cluster's optimum.
	if rep.Useful <= rep.FaultFree || rep.Degradation >= 0 {
		t.Fatalf("useful %v / degradation %v should beat base optimum %v",
			rep.Useful, rep.Degradation, rep.FaultFree)
	}
	last := rep.Rounds[len(rep.Rounds)-1]
	found := false
	for _, c := range last.Computers {
		if c >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("final round %+v never used the joined machines", last)
	}
}

// TestSimulateElasticRedundantRecruitsJoins: the redundant policy spawns
// a recruit round per join cohort and credits its completed units.
func TestSimulateElasticRedundantRecruitsJoins(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.5, 0.6, 0.7, 0.8}
	const L = 2000.0
	plan := fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Join, Computer: 4, At: 500, Rho: 0.4},
		{Kind: fault.Join, Computer: 5, At: 500, Rho: 0.45},
		{Kind: fault.Join, Computer: 6, At: 900, Rho: 0.3},
		{Kind: fault.Join, Computer: 7, At: 900, Rho: 0.5},
	}}
	pol := ElasticPolicy{Redundancy: Redundancy{Replicas: 2}}
	rep, err := SimulateElastic(context.Background(), m, p, L, plan, pol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 3 {
		t.Fatalf("%d rounds, want base + 2 recruit cohorts", len(rep.Rounds))
	}
	if rep.Rounds[1].Start != 500 || rep.Rounds[2].Start != 900 {
		t.Fatalf("recruit rounds at %v/%v, want 500/900", rep.Rounds[1].Start, rep.Rounds[2].Start)
	}
	empty, err := SimulateElastic(context.Background(), m, p, L, fault.Plan{}, pol, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Useful <= empty.Useful {
		t.Fatalf("joins added no useful work: %v vs %v without them", rep.Useful, empty.Useful)
	}
	if rep.UnitsCompleted <= 0 || rep.UnitsCompleted > rep.Units {
		t.Fatalf("units %d/%d incoherent", rep.UnitsCompleted, rep.Units)
	}
}

// TestSimulateElasticRedundantEmptyPlanOverhead pins the golden bound:
// with no churn at all, replicated-2's dispatch overhead is exactly its
// factor and never more than 2×, while still completing real work.
func TestSimulateElasticRedundantEmptyPlanOverhead(t *testing.T) {
	m := model.Table1()
	rng := stats.NewRNG(7)
	p := profile.RandomNormalized(rng, 8)
	const L = 3600.0
	rep, err := SimulateElastic(context.Background(), m, p, L, fault.Plan{},
		ElasticPolicy{Redundancy: Redundancy{Replicas: 2}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Useful <= 0 {
		t.Fatal("no useful work on an empty plan")
	}
	if rep.Overhead > 2+1e-9 {
		t.Fatalf("empty-plan overhead %v exceeds the replication factor", rep.Overhead)
	}
	if rep.UnitsCompleted != rep.Units {
		t.Fatalf("%d of %d units completed on an empty plan", rep.UnitsCompleted, rep.Units)
	}
}

// TestSimulateElasticRedundancyBeatsSalvageUnderChurn is the headline
// trade. Under deterministic churn alone the replanner ties redundancy —
// its exact rollouts are clairvoyant, and the survivors' capacity equals
// the redundant pairs' effective capacity. The schemes part ways once
// unpredicted stragglers enter: with ρ-jitter every salvage round is
// planned to finish exactly at the deadline, so one bad draw forfeits
// that machine's whole allocation, while a margined replicated pair
// loses a unit only when BOTH replicas draw badly. Aggregated over a
// seed pool, redundancy must beat the reactive replanner decisively.
// cmd/benchfault certifies the same regime.
func TestSimulateElasticRedundancyBeatsSalvageUnderChurn(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	const L = 3600.0
	plan := heavyChurnPlan()
	var replan, rep2, coded float64
	for seed := uint64(1); seed <= 5; seed++ {
		opt := Options{RhoJitter: 0.15, Seed: seed}
		rp, err := SimulateElastic(context.Background(), m, p, L, plan,
			ElasticPolicy{Replan: true}, opt)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := SimulateElastic(context.Background(), m, p, L, plan,
			ElasticPolicy{Redundancy: Redundancy{Replicas: 2, Margin: 0.15}}, opt)
		if err != nil {
			t.Fatal(err)
		}
		cd, err := SimulateElastic(context.Background(), m, p, L, plan,
			ElasticPolicy{Redundancy: Redundancy{CodedK: 2, CodedN: 3, Margin: 0.15}}, opt)
		if err != nil {
			t.Fatal(err)
		}
		replan += rp.Useful
		rep2 += r2.Useful
		coded += cd.Useful
	}
	if rep2 <= 1.2*replan {
		t.Errorf("replicated-2@0.15 useful %v ≤ 1.2× replan salvage %v under heavy churn", rep2, replan)
	}
	if coded <= 1.1*replan {
		t.Errorf("coded-2of3@0.15 useful %v ≤ 1.1× replan salvage %v under heavy churn", coded, replan)
	}
}

// heavyChurnPlan mixes every disruption class with a join cohort on an
// 8-machine ρ=0.5 cluster over a 3600 lifespan: a slowdown and a crash
// wound the early rounds, an outage swallows the middle of the lifespan,
// a late slowdown strands the tail, and two recruits arrive at t=600.
// cmd/benchfault certifies the same regime.
func heavyChurnPlan() fault.Plan {
	return fault.Plan{Faults: []fault.Fault{
		{Kind: fault.Slowdown, Computer: 0, At: 500, Factor: 7},
		{Kind: fault.Crash, Computer: 2, At: 1300},
		{Kind: fault.Outage, Computer: 4, At: 2000, Until: 3200},
		{Kind: fault.Slowdown, Computer: 6, At: 2600, Factor: 9},
		{Kind: fault.Join, Computer: 8, At: 600, Rho: 0.5},
		{Kind: fault.Join, Computer: 9, At: 600, Rho: 0.5},
	}}
}

// TestChaosElasticProperties drives SimulateElastic across seeded
// elastic plans: accounting balances under every policy, replan never
// salvages less than ride, and the policies agree on the fault-free
// yardstick.
func TestChaosElasticProperties(t *testing.T) {
	rng := stats.NewRNG(123)
	m := model.Table1()
	const L = 3600.0
	pols := []ElasticPolicy{
		{},
		{Replan: true},
		{Redundancy: Redundancy{Replicas: 2}},
		{Redundancy: Redundancy{CodedK: 2, CodedN: 3}},
	}
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(10)
		p := profile.RandomNormalized(rng, n)
		plan := fault.RandomElastic(rng, n, L, rng.Intn(10))
		var useful [4]float64
		for pi, pol := range pols {
			rep, err := SimulateElastic(context.Background(), m, p, L, plan, pol, Options{})
			if err != nil {
				t.Fatalf("trial %d policy %s: %v", trial, pol, err)
			}
			if rep.Useful < 0 || rep.Dispatched < rep.Useful*(1-1e-12) {
				t.Fatalf("trial %d policy %s: useful %v dispatched %v", trial, pol, rep.Useful, rep.Dispatched)
			}
			if math.Abs(rep.Lost-(rep.Dispatched-rep.Useful)) > 1e-9*math.Max(1, rep.Dispatched) {
				t.Fatalf("trial %d policy %s: lost %v ≠ dispatched−useful", trial, pol, rep.Lost)
			}
			if rep.BaseN != n || rep.Joins != plan.NumJoins() {
				t.Fatalf("trial %d policy %s: base %d joins %d", trial, pol, rep.BaseN, rep.Joins)
			}
			useful[pi] = rep.Useful
		}
		if useful[1] < useful[0]*(1-1e-9)-1e-9 {
			t.Fatalf("trial %d: replan %v below ride %v\nplan %+v", trial, useful[1], useful[0], plan)
		}
	}
}

// TestSimulateElasticHonorsContext: a cancelled context aborts the run.
func TestSimulateElasticHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := model.Table1()
	p := profile.Profile{0.5, 0.5}
	_, err := SimulateElastic(ctx, m, p, 100, fault.Plan{}, ElasticPolicy{Replan: true}, Options{})
	if err == nil {
		t.Fatal("cancelled context not honored")
	}
}

// TestSimulateElasticRejectsBadInput covers the validation surface.
func TestSimulateElasticRejectsBadInput(t *testing.T) {
	m := model.Table1()
	p := profile.Profile{0.5}
	bad := []struct {
		name string
		run  func() error
	}{
		{"zero lifespan", func() error {
			_, err := SimulateElastic(nil, m, p, 0, fault.Plan{}, ElasticPolicy{}, Options{})
			return err
		}},
		{"invalid plan", func() error {
			plan := fault.Plan{Faults: []fault.Fault{{Kind: fault.Join, Computer: 5, At: 1, Rho: 0.5}}}
			_, err := SimulateElastic(nil, m, p, 100, plan, ElasticPolicy{}, Options{})
			return err
		}},
		{"conflicting policy", func() error {
			_, err := SimulateElastic(nil, m, p, 100, fault.Plan{},
				ElasticPolicy{Replan: true, Redundancy: Redundancy{Replicas: 2}}, Options{})
			return err
		}},
		{"bad redundancy", func() error {
			_, err := SimulateElastic(nil, m, p, 100, fault.Plan{},
				ElasticPolicy{Redundancy: Redundancy{Replicas: 1}}, Options{})
			return err
		}},
	}
	for _, tc := range bad {
		if tc.run() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
