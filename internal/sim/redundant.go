package sim

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"hetero/internal/fault"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/stats"
)

// MaxRedundancyGroup caps replication factors and coded group widths. The
// bound keeps per-unit fan-out (and thus channel occupancy per unit)
// commensurate with realistic coded-computation deployments.
const MaxRedundancyGroup = 64

// Redundancy selects a proactive redundant-dispatch scheme, the
// alternative to reactive ride-vs-replan salvage. Exactly one of the two
// families may be set:
//
//   - Replicated-r (Replicas ≥ 2): every work unit is sent whole to r
//     machines; the first fully-returned copy completes the unit and the
//     other r−1 copies are pure overhead.
//   - MDS-style k-of-n coding (CodedK ≥ 1, CodedN > CodedK): every unit is
//     split into k shards, encoded into n, and one shard sent to each of n
//     machines; the unit completes when the k-th shard returns, so up to
//     n−k stragglers per group are tolerated at an n/k work overhead.
//
// Margin is the deadline headroom: the fraction of the lifespan the plan
// reserves so that units complete early and stragglers — unpredicted
// drift, jittered speeds — land inside the band instead of past the
// deadline cliff. This is the deterministic analog of provisioning coded
// shards to finish before the deadline with high probability: a unit is
// lost only when every hedge replica overshoots the band, not when a
// single machine does.
//
// The zero value means redundancy off.
type Redundancy struct {
	Replicas int     `json:"replicas,omitempty"`
	CodedK   int     `json:"coded_k,omitempty"`
	CodedN   int     `json:"coded_n,omitempty"`
	Margin   float64 `json:"margin,omitempty"`
}

// Enabled reports whether any redundant scheme is selected.
func (r Redundancy) Enabled() bool { return r.Replicas != 0 || r.CodedK != 0 || r.CodedN != 0 }

// Validate checks the scheme's parameters. The zero value is valid.
func (r Redundancy) Validate() error {
	if !r.Enabled() {
		if r.Margin != 0 {
			return fmt.Errorf("sim: straggler margin %v requires an enabled redundancy scheme", r.Margin)
		}
		return nil
	}
	if math.IsNaN(r.Margin) || r.Margin < 0 || r.Margin > 0.5 {
		return fmt.Errorf("sim: straggler margin %v outside [0,0.5]", r.Margin)
	}
	if r.Replicas != 0 {
		if r.CodedK != 0 || r.CodedN != 0 {
			return fmt.Errorf("sim: redundancy must pick replication or coding, not both")
		}
		if r.Replicas < 2 || r.Replicas > MaxRedundancyGroup {
			return fmt.Errorf("sim: replication factor %d outside [2,%d]", r.Replicas, MaxRedundancyGroup)
		}
		return nil
	}
	if r.CodedK < 1 {
		return fmt.Errorf("sim: coded k=%d must be at least 1", r.CodedK)
	}
	if r.CodedN <= r.CodedK || r.CodedN > MaxRedundancyGroup {
		return fmt.Errorf("sim: coded n=%d must exceed k=%d and stay within %d", r.CodedN, r.CodedK, MaxRedundancyGroup)
	}
	return nil
}

// GroupSize is how many machines serve one work unit: r for replication,
// n for k-of-n coding, 1 when redundancy is off.
func (r Redundancy) GroupSize() int {
	switch {
	case r.Replicas >= 2:
		return r.Replicas
	case r.CodedK >= 1:
		return r.CodedN
	default:
		return 1
	}
}

// need is how many member returns complete a unit served by a group of
// the given size (a trailing group may be narrower than GroupSize).
func (r Redundancy) need(size int) int {
	if r.CodedK >= 1 && r.CodedK < size {
		return r.CodedK
	}
	if r.CodedK >= 1 {
		return size
	}
	return 1
}

// String renders the scheme in the CLI flag's vocabulary: "off",
// "replicated-3", "coded-2of4", with a "@M" suffix for a nonzero
// straggler margin ("replicated-2@0.15").
func (r Redundancy) String() string {
	var s string
	switch {
	case r.Replicas >= 2:
		s = fmt.Sprintf("replicated-%d", r.Replicas)
	case r.CodedK >= 1:
		s = fmt.Sprintf("coded-%dof%d", r.CodedK, r.CodedN)
	default:
		return "off"
	}
	if r.Margin > 0 {
		s += fmt.Sprintf("@%g", r.Margin)
	}
	return s
}

// ParseRedundancy parses the -redundancy flag: "off"/"none"/"" disable,
// a bare integer r ≥ 2 selects replicated-r, "coded:k" selects k-of-(k+1)
// coding, and "coded:KofN" selects k-of-n explicitly. A "@M" suffix sets
// the straggler margin ("2@0.15", "coded:2of4@0.1").
func ParseRedundancy(s string) (Redundancy, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "", "off", "none":
		return Redundancy{}, nil
	}
	margin := 0.0
	if i := strings.LastIndex(s, "@"); i >= 0 {
		m, err := strconv.ParseFloat(s[i+1:], 64)
		if err != nil {
			return Redundancy{}, fmt.Errorf("sim: malformed straggler margin in %q", s)
		}
		margin = m
		s = s[:i]
	}
	// Accept the String() spellings too, so reports round-trip.
	if spec, ok := strings.CutPrefix(s, "replicated-"); ok {
		s = spec
	} else if spec, ok := strings.CutPrefix(s, "coded-"); ok {
		s = "coded:" + spec
	}
	if spec, ok := strings.CutPrefix(s, "coded:"); ok {
		var red Redundancy
		if i := strings.Index(spec, "of"); i >= 0 {
			k, kerr := strconv.Atoi(spec[:i])
			n, nerr := strconv.Atoi(spec[i+2:])
			if kerr != nil || nerr != nil {
				return Redundancy{}, fmt.Errorf("sim: malformed coded redundancy %q (want coded:KofN)", s)
			}
			red = Redundancy{CodedK: k, CodedN: n, Margin: margin}
		} else {
			k, err := strconv.Atoi(spec)
			if err != nil {
				return Redundancy{}, fmt.Errorf("sim: malformed coded redundancy %q (want coded:K)", s)
			}
			red = Redundancy{CodedK: k, CodedN: k + 1, Margin: margin}
		}
		return red, red.Validate()
	}
	r, err := strconv.Atoi(s)
	if err != nil || r == 0 {
		return Redundancy{}, fmt.Errorf("sim: unknown redundancy %q (want off, an integer replication factor, or coded:K[ofN])", s)
	}
	red := Redundancy{Replicas: r, Margin: margin}
	return red, red.Validate()
}

// Assignment groups a protocol's sends into redundant work units. Every
// send position (index into Protocol.Order/Protocol.Alloc) belongs to
// exactly one unit; a unit's results are decodable — its Unit work counts
// — once Need of its sends have fully returned.
type Assignment struct {
	// Units lists, per unit, the positions of the sends carrying it, in
	// dispatch order.
	Units [][]int
	// Need is how many returns decode the unit: 1 for replication, k for
	// k-of-n coding, always 1 for a trivial (redundancy-off) assignment.
	Need []int
	// Unit is the useful work credited when the unit completes.
	Unit []float64
	// Start, when non-nil, holds each unit's release time: its sends
	// enter the shared FIFO channel's queue at that instant instead of
	// time 0. Recruit rounds for machines joining mid-lifespan release at
	// the join instant and compete with in-flight transfers — there is
	// only one channel. Nil means every unit releases at 0.
	Start []float64
}

// TrivialAssignment wraps each send of pr as its own unit: redundancy
// off, every return counts in full.
func TrivialAssignment(pr Protocol) Assignment {
	asn := Assignment{
		Units: make([][]int, len(pr.Order)),
		Need:  make([]int, len(pr.Order)),
		Unit:  make([]float64, len(pr.Order)),
	}
	for k := range pr.Order {
		asn.Units[k] = []int{k}
		asn.Need[k] = 1
		asn.Unit[k] = pr.Alloc[k]
	}
	return asn
}

// Validate checks that the assignment partitions pr's send positions and
// that every unit's need and size are coherent.
func (a Assignment) Validate(pr Protocol) error {
	if len(a.Units) != len(a.Need) || len(a.Units) != len(a.Unit) {
		return fmt.Errorf("sim: assignment arrays disagree: %d units, %d needs, %d sizes",
			len(a.Units), len(a.Need), len(a.Unit))
	}
	if a.Start != nil && len(a.Start) != len(a.Units) {
		return fmt.Errorf("sim: %d release times for %d units", len(a.Start), len(a.Units))
	}
	for j, s := range a.Start {
		if !(s >= 0) || math.IsInf(s, 0) {
			return fmt.Errorf("sim: unit %d release time %v must be finite and non-negative", j, s)
		}
	}
	seen := make([]bool, len(pr.Order))
	covered := 0
	for j, unit := range a.Units {
		if len(unit) == 0 {
			return fmt.Errorf("sim: unit %d has no members", j)
		}
		if a.Need[j] < 1 || a.Need[j] > len(unit) {
			return fmt.Errorf("sim: unit %d needs %d of %d returns", j, a.Need[j], len(unit))
		}
		if !(a.Unit[j] > 0) || math.IsInf(a.Unit[j], 0) {
			return fmt.Errorf("sim: unit %d work %v must be positive and finite", j, a.Unit[j])
		}
		for _, k := range unit {
			if k < 0 || k >= len(seen) {
				return fmt.Errorf("sim: unit %d references send %d of %d", j, k, len(seen))
			}
			if seen[k] {
				return fmt.Errorf("sim: send %d assigned to two units", k)
			}
			seen[k] = true
			covered++
		}
	}
	if covered != len(pr.Order) {
		return fmt.Errorf("sim: assignment covers %d of %d sends", covered, len(pr.Order))
	}
	return nil
}

// UnitTrace records one redundant unit's outcome.
type UnitTrace struct {
	Members     []int   // send positions carrying the unit, in dispatch order
	Need        int     // returns required to decode
	Work        float64 // useful credit on completion
	Returns     int     // member returns that fully arrived (incl. past Need)
	CompletedAt float64 // arrival of the Need-th return; +Inf if never reached
}

// RedundantResult is the outcome of executing a redundant assignment
// under a fault plan. Dispatched counts every send; Useful counts each
// unit exactly once, at its Need-th completed return — duplicate and
// late returns are deliberate overhead, never double credit.
type RedundantResult struct {
	Useful     float64
	Dispatched float64
	// Overhead is Dispatched/Useful (0 when nothing useful returned).
	Overhead  float64
	Makespan  float64
	Events    int
	Units     []UnitTrace
	Computers []FaultComputerTrace
}

// UsefulBy returns the decodable work whose completing return arrived by
// time t, with the same relative tolerance as FaultResult.CompletedBy.
func (r RedundantResult) UsefulBy(t float64) float64 {
	cutoff := t * (1 + 1e-9)
	var acc stats.KahanSum
	for _, u := range r.Units {
		if u.Returns >= u.Need && u.CompletedAt <= cutoff {
			acc.Add(u.Work)
		}
	}
	return acc.Sum()
}

// validateRedundantOrder is Protocol.Validate relaxed for redundant and
// elastic dispatch: every served id must be a distinct machine of the
// n-cluster with a positive allocation, but machines may go unserved (a
// joiner arriving past the lifespan is never dispatched).
func validateRedundantOrder(pr Protocol, n int) error {
	if len(pr.Order) != len(pr.Alloc) {
		return fmt.Errorf("sim: protocol order/alloc sized %d/%d", len(pr.Order), len(pr.Alloc))
	}
	seen := make([]bool, n)
	for k, id := range pr.Order {
		if id < 0 || id >= n || seen[id] {
			return fmt.Errorf("sim: startup order %v reuses or exceeds the %d-computer cluster", pr.Order, n)
		}
		seen[id] = true
		if w := pr.Alloc[k]; !(w > 0) || math.IsInf(w, 0) {
			return fmt.Errorf("sim: allocation %d is %v, must be positive and finite", k, w)
		}
	}
	return nil
}

// RunCEPRedundant simulates protocol pr under fault plan plan with the
// sends grouped into redundant units by asn: RunCEPFaulty's engine and
// FIFO channel semantics, with completion accounted per unit — a unit's
// work is credited exactly once, when its Need-th member return fully
// arrives. p is the base cluster; join events in the plan extend it, and
// pr may address joined machines past the base indices. Units with a
// release time enter the single shared channel's queue at that instant.
// An empty asn defaults to the trivial assignment, under which the run
// reproduces RunCEPFaulty (and, on an empty plan, RunCEP) bit-for-bit:
// identical floating-point operations in identical event order.
func RunCEPRedundant(m model.Params, p profile.Profile, pr Protocol, asn Assignment, plan fault.Plan, opt Options) (RedundantResult, error) {
	if err := m.Validate(); err != nil {
		return RedundantResult{}, err
	}
	if opt.RhoJitter < 0 || opt.RhoJitter >= 1 {
		return RedundantResult{}, fmt.Errorf("sim: jitter %v outside [0,1)", opt.RhoJitter)
	}
	tl, err := fault.Compile(plan, len(p))
	if err != nil {
		return RedundantResult{}, err
	}
	pExt := p
	if j := plan.NumJoins(); j > 0 {
		pExt = make(profile.Profile, 0, len(p)+j)
		pExt = append(append(pExt, p...), plan.JoinRhos(len(p))...)
	}
	if err := validateRedundantOrder(pr, len(pExt)); err != nil {
		return RedundantResult{}, err
	}
	if len(asn.Units) == 0 {
		asn = TrivialAssignment(pr)
	}
	if err := asn.Validate(pr); err != nil {
		return RedundantResult{}, err
	}

	eff := make([]float64, len(pExt))
	copy(eff, pExt)
	if opt.RhoJitter > 0 {
		rng := stats.NewRNG(opt.Seed)
		for i := range eff {
			eff[i] *= 1 + opt.RhoJitter*(2*rng.Float64()-1)
		}
	}

	eng := NewEngine()
	ch := &faultChannel{eng: eng, tl: tl}
	a, b, td := m.A(), m.B(), m.TauDelta()

	res := RedundantResult{
		Computers: make([]FaultComputerTrace, len(pr.Order)),
		Units:     make([]UnitTrace, len(asn.Units)),
	}
	var useful, dispatched stats.KahanSum

	for j, unit := range asn.Units {
		j := j
		release := 0.0
		if asn.Start != nil {
			release = asn.Start[j]
		}
		res.Units[j] = UnitTrace{Members: unit, Need: asn.Need[j], Work: asn.Unit[j], CompletedAt: math.Inf(1)}
		for _, k := range unit {
			k, id := k, pr.Order[k]
			w := pr.Alloc[k]
			dispatched.Add(w)
			res.Computers[k] = FaultComputerTrace{ComputerTrace: ComputerTrace{ID: id, Rho: pExt[id], EffRho: eff[id], Work: w}}
			send := func(sendStart, recvEnd float64, ok bool) {
				tr := &res.Computers[k]
				tr.RecvStart, tr.RecvEnd = sendStart, recvEnd
				if !ok {
					tr.BusyEnd, tr.ReturnStart, tr.ResultsAt = math.Inf(1), math.Inf(1), math.Inf(1)
					tr.Fate = FateNeverFinished
					return
				}
				busy := b * eff[id] * w
				busyEnd := tl.BusyFinish(id, recvEnd, busy)
				if math.IsInf(busyEnd, 1) {
					tr.BusyEnd, tr.ReturnStart, tr.ResultsAt = math.Inf(1), math.Inf(1), math.Inf(1)
					tr.Fate = FateNeverFinished
					return
				}
				eng.At(busyEnd, func() {
					tr.BusyEnd = eng.Now()
					ch.Acquire(td*w, tl.CrashTime(id), func(retStart, retEnd float64, ok bool) {
						tr.ReturnStart = retStart
						if !ok {
							tr.ResultsAt = math.Inf(1)
							tr.Fate = FateReturnAborted
							return
						}
						tr.ReturnStart, tr.ResultsAt = retStart, retEnd
						tr.Fate = FateReturned
						ut := &res.Units[j]
						ut.Returns++
						if ut.Returns == ut.Need {
							ut.CompletedAt = retEnd
							useful.Add(ut.Work)
						}
						if retEnd > res.Makespan {
							res.Makespan = retEnd
						}
					})
				})
			}
			if release > 0 {
				eng.At(release, func() { ch.Acquire(a*w, math.Inf(1), send) })
			} else {
				ch.Acquire(a*w, math.Inf(1), send)
			}
		}
	}
	if err := eng.Run(); err != nil {
		return RedundantResult{}, err
	}
	if err := ch.VerifyExclusive(); err != nil {
		return RedundantResult{}, err
	}
	res.Useful = useful.Sum()
	res.Dispatched = dispatched.Sum()
	if res.Useful > 0 {
		res.Overhead = res.Dispatched / res.Useful
	}
	res.Events = eng.Processed()
	return res, nil
}

// PlanRedundant builds a redundant dispatch plan for cluster p over the
// lifespan. Machines are sorted by speed and chunked into groups of the
// scheme's width, so replicas (or coded shards) of a unit land on
// like-speed machines — the load-balanced heterogeneous assignment of
// Reisizadeh et al., which never yokes a fast machine to a straggler's
// unit. Each group plans at the speed of its completion-determining
// member (the fastest for replication, the need-th fastest for coding);
// unit sizes come from the gap-free allocation recurrence on that virtual
// group profile and are then rescaled so the probe makespan lands exactly
// on the lifespan, by positive homogeneity of the pipeline. With
// redundancy off this is exactly OptimalFIFO with the trivial assignment.
func PlanRedundant(m model.Params, p profile.Profile, lifespan float64, red Redundancy) (Protocol, Assignment, error) {
	if err := red.Validate(); err != nil {
		return Protocol{}, Assignment{}, err
	}
	if !red.Enabled() {
		pr, err := OptimalFIFO(m, p, lifespan)
		if err != nil {
			return Protocol{}, Assignment{}, err
		}
		return pr, TrivialAssignment(pr), nil
	}
	if len(p) == 0 {
		return Protocol{}, Assignment{}, fmt.Errorf("sim: empty profile")
	}
	if !(lifespan > 0) || math.IsInf(lifespan, 0) {
		return Protocol{}, Assignment{}, fmt.Errorf("sim: lifespan %v must be positive and finite", lifespan)
	}
	for i, rho := range p {
		if !(rho > 0) || math.IsInf(rho, 0) {
			return Protocol{}, Assignment{}, fmt.Errorf("sim: computer %d speed %v must be positive and finite", i, rho)
		}
	}

	bySpeed := make([]int, len(p))
	for i := range bySpeed {
		bySpeed[i] = i
	}
	sort.SliceStable(bySpeed, func(a, b int) bool { return p[bySpeed[a]] < p[bySpeed[b]] })
	g := red.GroupSize()
	var groups [][]int
	for lo := 0; lo < len(bySpeed); lo += g {
		groups = append(groups, bySpeed[lo:min(lo+g, len(bySpeed))])
	}

	// The straggler margin shrinks the planning horizon: units are sized
	// and scaled to finish by (1−Margin)·L, so a replica overshooting by
	// up to the band still lands before the deadline cliff.
	horizon := lifespan * (1 - red.Margin)
	vp := make(profile.Profile, len(groups))
	need := make([]int, len(groups))
	for j, grp := range groups {
		need[j] = red.need(len(grp))
		vp[j] = p[grp[need[j]-1]]
	}
	units, err := schedule.Allocations(m, vp, horizon)
	if err != nil {
		return Protocol{}, Assignment{}, err
	}

	pr := Protocol{}
	asn := Assignment{Units: make([][]int, len(groups)), Need: need, Unit: units}
	pos := 0
	for j, grp := range groups {
		// Replication sends the whole unit to every member; coding sends one
		// of need equal shards (the n−need parity shards carry the same
		// volume each).
		share := units[j]
		if red.CodedK >= 1 {
			share = units[j] / float64(need[j])
		}
		for _, id := range grp {
			pr.Order = append(pr.Order, id)
			pr.Alloc = append(pr.Alloc, share)
			asn.Units[j] = append(asn.Units[j], pos)
			pos++
		}
	}

	probe, err := RunCEPRedundant(m, p, pr, asn, fault.Plan{}, Options{})
	if err != nil {
		return Protocol{}, Assignment{}, err
	}
	if !(probe.Makespan > 0) || math.IsInf(probe.Makespan, 0) {
		return Protocol{}, Assignment{}, fmt.Errorf("sim: redundant probe produced makespan %v", probe.Makespan)
	}
	c := horizon / probe.Makespan
	for k := range pr.Alloc {
		pr.Alloc[k] *= c
	}
	for j := range asn.Unit {
		asn.Unit[j] *= c
	}
	return pr, asn, nil
}
