package sim_test

import (
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/sim"
)

// ExampleRunCEP executes the optimal protocol event by event and confirms
// Theorem 2's work production.
func ExampleRunCEP() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.5, 0.25)
	proto, _ := sim.OptimalFIFO(env, cluster, 3600)
	res, _ := sim.RunCEP(env, cluster, proto, sim.Options{})
	fmt.Printf("simulated %.0f units; Theorem 2 predicts %.0f\n",
		res.Completed, core.W(env, cluster, 3600))
	// Output: simulated 25198 units; Theorem 2 predicts 25198
}

// ExampleEqualSplit quantifies what the naive equal allocation loses on a
// heterogeneous cluster.
func ExampleEqualSplit() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.25, 0.25, 0.25)
	proto, _ := sim.OptimalFIFO(env, cluster, 1000)
	opt, _ := sim.RunCEP(env, cluster, proto, sim.Options{})
	_, eq, _ := sim.EqualSplit(env, cluster, 1000)
	loss := 1 - eq.CompletedBy(1000)/opt.Completed
	fmt.Printf("equal split wastes %.0f%% of the cluster\n", math.Round(100*loss))
	// Output: equal split wastes 69% of the cluster
}

// ExampleMultiInstallment shows installments paying off at expensive links.
func ExampleMultiInstallment() {
	env := model.Params{Tau: 0.05, Pi: 1e-4, Delta: 1}
	cluster := profile.MustNew(1, 0.8, 0.6, 0.4)
	_, k1, _ := sim.MultiInstallment(env, cluster, 100, 1)
	_, k8, _ := sim.MultiInstallment(env, cluster, 100, 8)
	fmt.Printf("8 installments beat 1: %v\n", k8.Completed > k1.Completed)
	// Output: 8 installments beat 1: true
}
