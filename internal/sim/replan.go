package sim

import (
	"context"
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/fault"
	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
)

// DropPrice is the O(1) incremental pricing of losing one computer: the
// X-measure and asymptotic work rate of the cluster without it, computed by
// incr.Evaluator.WhatIfDrop against the evaluator of the round that was
// running when the fault hit.
type DropPrice struct {
	Computer int     `json:"computer"`
	X        float64 `json:"x"`
	WorkRate float64 `json:"work_rate"`
}

// DecisionReport records the replanner's choice at one fault event: who
// was lost or recovered, the O(1) capacity pricing of each loss, and the
// projected salvage of riding the in-flight round versus abandoning it for
// a fresh remaining-lifespan plan on the survivors.
type DecisionReport struct {
	At        float64 `json:"at"`
	Survivors int     `json:"survivors"`
	// Dropped lists computers that became unavailable since the previous
	// event (crashed, or entered an outage); Restored lists computers that
	// came back; Joined lists machines that entered the cluster for the
	// first time at this event (elastic plans only).
	Dropped  []int `json:"dropped,omitempty"`
	Restored []int `json:"restored,omitempty"`
	Joined   []int `json:"joined,omitempty"`
	// DropPrices prices each drop in O(1) against the running round's
	// evaluator — the capacity the cluster lost, before any rescan.
	DropPrices []DropPrice `json:"drop_prices,omitempty"`
	// RideValue and ReplanValue are the projected total salvage (work
	// returned by the lifespan) of the two branches; Replanned reports which
	// one the replanner adopted.
	RideValue   float64 `json:"ride_value"`
	ReplanValue float64 `json:"replan_value"`
	Replanned   bool    `json:"replanned"`
}

// RoundReport describes one adopted dispatch round: when it started, when
// it was abandoned (or the lifespan, for the final round), who it ran on,
// and what it salvaged.
type RoundReport struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Computers lists the round's members by original index.
	Computers []int `json:"computers"`
	// PlannedRate is the asymptotic work rate of the round's planning
	// profile (members at their degraded speeds, normalized to ρ ≤ 1).
	PlannedRate float64 `json:"planned_rate"`
	Dispatched  float64 `json:"dispatched"`
	Salvaged    float64 `json:"salvaged"`
}

// DegradedReport is the outcome of a fault-aware simulation: what the
// cluster salvaged, what the faults destroyed, and how far the result falls
// short of the fault-free optimum W(L;P).
type DegradedReport struct {
	Lifespan float64 `json:"lifespan"`
	// FaultFree is Theorem 2's W(L;P), the work the intact cluster would
	// complete by L under the optimal protocol.
	FaultFree float64 `json:"fault_free_work"`
	// Salvaged is the work whose results reached the server by L.
	Salvaged float64 `json:"salvaged_work"`
	// Dispatched is the work committed to dispatch rounds; Lost counts both
	// work destroyed by faults and work abandoned by replanning.
	Dispatched float64 `json:"dispatched_work"`
	Lost       float64 `json:"lost_work"`
	// Degradation is 1 − Salvaged/FaultFree.
	Degradation float64 `json:"degradation"`
	Replan      bool    `json:"replan"`
	// Rounds and Decisions are populated in replan mode.
	Rounds    []RoundReport    `json:"rounds,omitempty"`
	Decisions []DecisionReport `json:"decisions,omitempty"`
	Events    int              `json:"events"`
}

func (r *DegradedReport) finish() {
	r.Lost = r.Dispatched - r.Salvaged
	if r.FaultFree > 0 {
		r.Degradation = 1 - r.Salvaged/r.FaultFree
	}
}

// SimulateFaulty runs the full fault-aware pipeline: the optimal protocol
// for (P, L) is dispatched and executed under the fault plan. With replan
// set, the server revisits the plan at every fault event: it prices the
// capacity change in O(1) with the incremental evaluator, projects the
// salvage of riding out the in-flight round versus abandoning it (its
// unreturned work lost, per FIFO semantics) for a fresh remaining-lifespan
// CEP on the surviving degraded profile, and adopts whichever projects
// more. Because the abandon branch is only taken when it projects at least
// the ride branch, the replanner never salvages less than the fixed
// protocol. ctx bounds the computation: the loop aborts with ctx.Err() at
// the next decision once the deadline passes.
func SimulateFaulty(ctx context.Context, m model.Params, p profile.Profile, lifespan float64, plan fault.Plan, replan bool, opt Options) (DegradedReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := m.Validate(); err != nil {
		return DegradedReport{}, err
	}
	if !(lifespan > 0) || math.IsInf(lifespan, 0) {
		return DegradedReport{}, fmt.Errorf("sim: lifespan %v must be positive and finite", lifespan)
	}
	if err := plan.Validate(len(p)); err != nil {
		return DegradedReport{}, err
	}
	if plan.NumJoins() > 0 {
		return DegradedReport{}, fmt.Errorf("sim: plan contains join events; use SimulateElastic")
	}
	rep := DegradedReport{Lifespan: lifespan, FaultFree: core.W(m, p, lifespan), Replan: replan}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	if !replan {
		pr, err := OptimalFIFO(m, p, lifespan)
		if err != nil {
			return rep, err
		}
		res, err := RunCEPFaulty(m, p, pr, plan, opt)
		if err != nil {
			return rep, err
		}
		rep.Salvaged = res.CompletedBy(lifespan)
		rep.Dispatched = res.Dispatched
		rep.Events = res.Events
		rep.finish()
		return rep, nil
	}
	return replanSimulate(ctx, m, p, lifespan, plan, rep, opt)
}

// round is one adopted dispatch round of the replanner, together with its
// exact rollout: the round's execution under every remaining fault, from
// which both banked salvage (results returned before an abandonment) and
// ride projections are read off.
type round struct {
	start   float64 // absolute adoption time
	members []int   // original computer indices
	rollout FaultResult
	rate    float64 // planned asymptotic work rate (clamped profile)
}

// replanSimulate executes the greedy one-step-lookahead replanner: at each
// fault event it compares the exact rollout of the in-flight round against
// abandoning it for a fresh optimal round on the current survivors (itself
// rolled out under the remaining faults), and adopts the better branch.
// opt's jitter perturbs each round's execution (the planner allocates from
// nominal speeds, the world runs the perturbed ones).
func replanSimulate(ctx context.Context, m model.Params, p profile.Profile, lifespan float64, plan fault.Plan, rep DegradedReport, opt Options) (DegradedReport, error) {
	tl, err := fault.Compile(plan, len(p))
	if err != nil {
		return rep, err
	}
	// Elastic plans extend the cluster: joined machines carry their own ρ
	// and sit past the base indices. The compiled timeline keeps them down
	// until their join instant, so membership below needs no special cases.
	pExt := p
	if j := plan.NumJoins(); j > 0 {
		pExt = make(profile.Profile, 0, len(p)+j)
		pExt = append(append(pExt, p...), plan.JoinRhos(len(p))...)
	}

	launch := func(s float64) (round, *incr.Evaluator, []int, error) {
		var members []int
		for i := range pExt {
			if !tl.Down(i, s) {
				members = append(members, i)
			}
		}
		if len(members) == 0 {
			return round{}, nil, nil, nil
		}
		eff := make(profile.Profile, len(members))
		planRho := make(profile.Profile, len(members))
		for j, i := range members {
			eff[j] = pExt[i] * tl.DriftMult(i, s)
			// The gap-free allocation recurrence is valid for any positive ρ
			// and gets the unclamped degraded speeds; the incr evaluator's
			// normalized domain gets them clamped to ρ ≤ 1.
			planRho[j] = math.Min(1, eff[j])
		}
		eval, err := incr.New(m, planRho)
		if err != nil {
			return round{}, nil, nil, err
		}
		alloc, err := schedule.Allocations(m, eff, lifespan-s)
		if err != nil {
			return round{}, nil, nil, err
		}
		pr := Protocol{Order: identity(len(members)), Alloc: alloc}
		res, err := RunCEPFaulty(m, eff, pr, shiftPlan(plan, s, members, len(pExt)), opt)
		if err != nil {
			return round{}, nil, nil, err
		}
		idx := make([]int, len(pExt))
		for i := range idx {
			idx[i] = -1
		}
		for j, i := range members {
			idx[i] = j
		}
		return round{start: s, members: members, rollout: res, rate: eval.WorkRate()}, eval, idx, nil
	}

	cur, curEval, curIdx, err := launch(0)
	if err != nil {
		return rep, err
	}
	// everUp distinguishes a join (first time up) from a restoration when a
	// machine turns available at an event.
	prevAvail := make([]bool, len(pExt))
	everUp := make([]bool, len(pExt))
	for i := range prevAvail {
		prevAvail[i] = !tl.Down(i, 0)
		everUp[i] = prevAvail[i]
	}
	var banked, dispatched float64
	adopt := func(r round) {
		dispatched += r.rollout.Dispatched
	}
	adopt(cur)

	finishRound := func(r round, end float64) RoundReport {
		salv := r.rollout.CompletedBy(end - r.start)
		banked += salv
		rep.Events += r.rollout.Events
		return RoundReport{
			Start: r.start, End: end, Computers: r.members,
			PlannedRate: r.rate, Dispatched: r.rollout.Dispatched, Salvaged: salv,
		}
	}

	for _, e := range plan.EventTimes(lifespan) {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		dec := DecisionReport{At: e}
		avail := make([]bool, len(pExt))
		for i := range pExt {
			avail[i] = !tl.Down(i, e)
			if avail[i] {
				dec.Survivors++
			}
			if prevAvail[i] && !avail[i] {
				dec.Dropped = append(dec.Dropped, i)
				if curEval != nil && curIdx[i] >= 0 {
					if x, rate, perr := curEval.WhatIfDrop(curIdx[i]); perr == nil {
						dec.DropPrices = append(dec.DropPrices, DropPrice{Computer: i, X: x, WorkRate: rate})
					}
				}
			} else if !prevAvail[i] && avail[i] {
				if everUp[i] {
					dec.Restored = append(dec.Restored, i)
				} else {
					dec.Joined = append(dec.Joined, i)
				}
			}
			if avail[i] {
				everUp[i] = true
			}
		}
		prevAvail = avail

		dec.RideValue = banked + cur.rollout.CompletedBy(lifespan-cur.start)
		dec.ReplanValue = math.Inf(-1)
		if dec.Survivors > 0 {
			cand, candEval, candIdx, cerr := launch(e)
			if cerr != nil {
				return rep, cerr
			}
			dec.ReplanValue = banked + cur.rollout.CompletedBy(e-cur.start) + cand.rollout.CompletedBy(lifespan-e)
			if dec.ReplanValue > dec.RideValue {
				dec.Replanned = true
				rep.Rounds = append(rep.Rounds, finishRound(cur, e))
				cur, curEval, curIdx = cand, candEval, candIdx
				adopt(cur)
			}
		}
		rep.Decisions = append(rep.Decisions, dec)
	}
	rep.Rounds = append(rep.Rounds, finishRound(cur, lifespan))

	rep.Salvaged = banked
	rep.Dispatched = dispatched
	rep.finish()
	return rep, nil
}

// shiftPlan rewrites the fault plan into the local frame of a round that
// starts at absolute time s on the given members (original indices,
// relabelled 0..len-1): times shift by −s, faults already folded into the
// round's profile (slowdowns at or before s) or irrelevant to its members
// drop out, and windows clip to the round.
func shiftPlan(plan fault.Plan, s float64, members []int, n int) fault.Plan {
	local := make([]int, n)
	for i := range local {
		local[i] = -1
	}
	for j, i := range members {
		local[i] = j
	}
	var out fault.Plan
	for _, f := range plan.Faults {
		switch f.Kind {
		case fault.Blackout:
			if f.Until <= s {
				continue
			}
			out.Faults = append(out.Faults, fault.Fault{
				Kind: fault.Blackout, At: math.Max(0, f.At-s), Until: f.Until - s,
			})
		case fault.Crash:
			if j := local[f.Computer]; j >= 0 && f.At > s {
				out.Faults = append(out.Faults, fault.Fault{Kind: fault.Crash, Computer: j, At: f.At - s})
			}
		case fault.Outage:
			if j := local[f.Computer]; j >= 0 && f.Until > s {
				out.Faults = append(out.Faults, fault.Fault{
					Kind: fault.Outage, Computer: j, At: math.Max(0, f.At-s), Until: f.Until - s,
				})
			}
		case fault.Slowdown:
			// Factors with onset at or before s are already in the round's
			// effective profile.
			if j := local[f.Computer]; j >= 0 && f.At > s {
				out.Faults = append(out.Faults, fault.Fault{
					Kind: fault.Slowdown, Computer: j, At: f.At - s, Factor: f.Factor,
				})
			}
		case fault.Join:
			// Joins are membership, not degradation: a round's members are
			// already joined (their speeds are in its profile), and a
			// non-member's future join triggers its own event, never a fault
			// inside this round.
		}
	}
	return out
}
