package sim

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Message is one work package addressed to one computer. Multi-installment
// protocols send several messages per computer; the paper's single-round
// protocol is the special case of one message each.
type Message struct {
	Computer int
	Work     float64
}

// MsgProtocol is a generalized worksharing protocol: the server transmits
// the messages seriatim in the given order; each computer processes its own
// messages in arrival order; results return over the shared channel as they
// are produced (FCFS).
type MsgProtocol struct {
	Messages []Message
}

// Validate checks the protocol against an n-computer cluster.
func (mp MsgProtocol) Validate(n int) error {
	if len(mp.Messages) == 0 {
		return fmt.Errorf("sim: protocol has no messages")
	}
	for i, msg := range mp.Messages {
		if msg.Computer < 0 || msg.Computer >= n {
			return fmt.Errorf("sim: message %d addressed to computer %d of %d", i, msg.Computer, n)
		}
		if !(msg.Work > 0) || math.IsInf(msg.Work, 0) || math.IsNaN(msg.Work) {
			return fmt.Errorf("sim: message %d work %v must be positive and finite", i, msg.Work)
		}
	}
	return nil
}

// MsgTrace records one message's lifecycle.
type MsgTrace struct {
	Computer  int
	Work      float64
	RecvEnd   float64 // message fully arrived at the computer
	BusyEnd   float64 // its processing finished
	ResultsAt float64 // its results fully arrived back at the server
}

// MsgResult is the outcome of a multi-message simulation.
type MsgResult struct {
	Completed float64
	Makespan  float64
	Events    int
	Messages  []MsgTrace
}

// CompletedBy returns the work whose results arrived by t (same rounding
// tolerance as Result.CompletedBy).
func (r MsgResult) CompletedBy(t float64) float64 {
	cutoff := t * (1 + 1e-9)
	var acc stats.KahanSum
	for _, msg := range r.Messages {
		if msg.ResultsAt <= cutoff {
			acc.Add(msg.Work)
		}
	}
	return acc.Sum()
}

// RunMessages simulates a generalized (possibly multi-installment)
// worksharing protocol. Compared with RunCEP, each computer is itself a
// serial resource: its messages queue and process in arrival order, so a
// later installment waits for the earlier one to finish.
func RunMessages(m model.Params, p profile.Profile, mp MsgProtocol, opt Options) (MsgResult, error) {
	if err := m.Validate(); err != nil {
		return MsgResult{}, err
	}
	if err := mp.Validate(len(p)); err != nil {
		return MsgResult{}, err
	}
	if opt.RhoJitter < 0 || opt.RhoJitter >= 1 {
		return MsgResult{}, fmt.Errorf("sim: jitter %v outside [0,1)", opt.RhoJitter)
	}
	eff := make([]float64, len(p))
	copy(eff, p)
	if opt.RhoJitter > 0 {
		rng := stats.NewRNG(opt.Seed)
		for i := range eff {
			eff[i] *= 1 + opt.RhoJitter*(2*rng.Float64()-1)
		}
	}

	eng := NewEngine()
	network := NewChannel(eng)
	cpus := make([]*Channel, len(p))
	for i := range cpus {
		cpus[i] = NewChannel(eng)
	}
	a, b, td := m.A(), m.B(), m.TauDelta()

	res := MsgResult{Messages: make([]MsgTrace, len(mp.Messages))}
	var completed stats.KahanSum
	for k, msg := range mp.Messages {
		k, msg := k, msg
		res.Messages[k] = MsgTrace{Computer: msg.Computer, Work: msg.Work}
		network.Acquire(a*msg.Work, func(_, recvEnd float64) {
			tr := &res.Messages[k]
			tr.RecvEnd = recvEnd
			// Queue on the computer's own serial CPU.
			cpus[msg.Computer].Acquire(b*eff[msg.Computer]*msg.Work, func(_, busyEnd float64) {
				tr.BusyEnd = busyEnd
				network.Acquire(td*msg.Work, func(_, retEnd float64) {
					tr.ResultsAt = retEnd
					completed.Add(msg.Work)
					if retEnd > res.Makespan {
						res.Makespan = retEnd
					}
				})
			})
		})
	}
	if err := eng.Run(); err != nil {
		return MsgResult{}, err
	}
	if err := network.VerifyExclusive(); err != nil {
		return MsgResult{}, err
	}
	for i, cpu := range cpus {
		if err := cpu.VerifyExclusive(); err != nil {
			return MsgResult{}, fmt.Errorf("computer %d: %w", i, err)
		}
	}
	res.Completed = completed.Sum()
	res.Events = eng.Processed()
	return res, nil
}

// MultiInstallment builds the k-installment protocol derived from the
// optimal single-round FIFO allocations: each computer's package is split
// into k equal chunks, sent round-major (every computer's chunk r before
// any chunk r+1), and the whole thing is rescaled so the simulated makespan
// lands exactly on L. At µs-scale links the single round is already optimal
// and k > 1 only adds overhead-free reshuffling (the model has no
// per-message cost, so the gain is bounded by the ramp-up idle it removes);
// at expensive links the early small installments let computers start
// sooner and k > 1 completes strictly more work.
func MultiInstallment(m model.Params, p profile.Profile, lifespan float64, k int) (MsgProtocol, MsgResult, error) {
	if k <= 0 {
		return MsgProtocol{}, MsgResult{}, fmt.Errorf("sim: installments k = %d must be positive", k)
	}
	base, err := OptimalFIFO(m, p, lifespan)
	if err != nil {
		return MsgProtocol{}, MsgResult{}, err
	}
	var msgs []Message
	for round := 0; round < k; round++ {
		for pos, id := range base.Order {
			msgs = append(msgs, Message{Computer: id, Work: base.Alloc[pos] / float64(k)})
		}
	}
	probe := MsgProtocol{Messages: msgs}
	r, err := RunMessages(m, p, probe, Options{})
	if err != nil {
		return MsgProtocol{}, MsgResult{}, err
	}
	if !(r.Makespan > 0) {
		return MsgProtocol{}, MsgResult{}, fmt.Errorf("sim: probe produced makespan %v", r.Makespan)
	}
	// Positive homogeneity: rescale all installments so makespan = L.
	c := lifespan / r.Makespan
	scaled := MsgProtocol{Messages: make([]Message, len(msgs))}
	for i, msg := range msgs {
		scaled.Messages[i] = Message{Computer: msg.Computer, Work: c * msg.Work}
	}
	final, err := RunMessages(m, p, scaled, Options{})
	if err != nil {
		return MsgProtocol{}, MsgResult{}, err
	}
	return scaled, final, nil
}
