// Package sim is a discrete-event simulator for the Cluster-Exploitation
// Problem. Where package schedule *constructs* the optimal gap-free FIFO
// timeline analytically, sim *executes* an arbitrary worksharing protocol —
// any startup order and any work allocation — against the architectural
// model of §2.1, with the single shared channel arbitrated dynamically.
//
// This is the substrate behind the paper's "simulations that illustrate and
// elucidate the analytical results" (§1.2): it validates Theorem 2 (the
// event-driven execution of the optimal allocations completes exactly
// W(L;P) work), Theorem 1.2 (startup order does not matter), and it hosts
// the baseline protocols (equal and speed-proportional allocations) that
// quantify how much the optimal FIFO protocol buys.
//
// Model semantics, matching package schedule:
//   - outbound: the server packages and transmits seriatim; each send
//     occupies the shared server+channel pipeline for A·w time units and is
//     store-and-forward (the computer starts unpacking only when the whole
//     message has arrived);
//   - remote computer: busy for Bρw (unpack, compute, package results);
//   - return: the result message occupies the channel for τδw; a unit of
//     work is complete when its results fully arrive at the server. The
//     server's own result unpacking (π₀δw) is pipelined off the channel's
//     critical path and therefore not modelled as a resource.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback.
type event struct {
	time float64
	seq  int64 // tie-break: FIFO among simultaneous events
	run  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a minimal discrete-event simulation kernel: schedule callbacks
// at absolute times, then Run drains them in time order.
type Engine struct {
	queue     eventHeap
	now       float64
	seq       int64
	processed int
	running   bool
}

// NewEngine returns an empty engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Processed returns how many events have been executed.
func (e *Engine) Processed() int { return e.processed }

// At schedules fn to run at absolute time t. Scheduling in the past (before
// the current simulation time) panics — that is always a model bug.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v, before current time %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{time: t, seq: e.seq, run: fn})
}

// After schedules fn to run d time units from now.
func (e *Engine) After(d float64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Run executes events in time order until the queue is empty. It errors if
// called reentrantly.
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		e.now = ev.time
		e.processed++
		ev.run()
	}
	return nil
}

// Channel is the single shared communication resource: at most one message
// in transit at any moment, granted in request order (FIFO).
type Channel struct {
	eng    *Engine
	freeAt float64
	// Busy records every granted interval, for invariant checking.
	Busy []Interval
}

// Interval is a closed-open busy period [Start, End).
type Interval struct{ Start, End float64 }

// NewChannel returns an idle channel bound to eng.
func NewChannel(eng *Engine) *Channel { return &Channel{eng: eng} }

// Acquire requests the channel for dur time units starting no earlier than
// now; done runs when the occupation ends and receives the granted
// [start, end] interval. Requests are served in the order Acquire is called.
func (c *Channel) Acquire(dur float64, done func(start, end float64)) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative channel occupation %v", dur))
	}
	start := c.eng.Now()
	if c.freeAt > start {
		start = c.freeAt
	}
	end := start + dur
	c.freeAt = end
	c.Busy = append(c.Busy, Interval{start, end})
	c.eng.At(end, func() { done(start, end) })
}

// VerifyExclusive checks that no two granted intervals overlap (they are
// recorded in grant order, so adjacent comparison suffices).
func (c *Channel) VerifyExclusive() error {
	for i := 1; i < len(c.Busy); i++ {
		if c.Busy[i].Start < c.Busy[i-1].End-1e-12 {
			return fmt.Errorf("sim: channel intervals overlap: [%v,%v) then [%v,%v)",
				c.Busy[i-1].Start, c.Busy[i-1].End, c.Busy[i].Start, c.Busy[i].End)
		}
	}
	return nil
}
