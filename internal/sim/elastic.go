package sim

import (
	"context"
	"fmt"
	"math"

	"hetero/internal/core"
	"hetero/internal/fault"
	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// ElasticPolicy selects how the server confronts churn: reactive salvage
// (ride the dispatched protocol, or replan at every fault event — the
// SimulateFaulty policies, here join-aware) or proactive redundancy
// (replicated or coded dispatch, stragglers outrun rather than repriced).
// Replan and an enabled Redundancy are mutually exclusive: the point of
// SimulateElastic is to pit one against the other.
type ElasticPolicy struct {
	Replan     bool       `json:"replan,omitempty"`
	Redundancy Redundancy `json:"redundancy,omitempty"`
}

// Validate checks the policy's coherence.
func (pol ElasticPolicy) Validate() error {
	if err := pol.Redundancy.Validate(); err != nil {
		return err
	}
	if pol.Replan && pol.Redundancy.Enabled() {
		return fmt.Errorf("sim: elastic policy must pick replan salvage or redundancy, not both")
	}
	return nil
}

// String names the policy: "salvage-ride", "salvage-replan", or the
// redundancy scheme ("replicated-3", "coded-2of4").
func (pol ElasticPolicy) String() string {
	switch {
	case pol.Redundancy.Enabled():
		return pol.Redundancy.String()
	case pol.Replan:
		return "salvage-replan"
	default:
		return "salvage-ride"
	}
}

// ElasticReport is the outcome of an elastic-churn simulation: useful
// work returned by the lifespan under the chosen policy, measured against
// the fault-free optimum of the base cluster.
type ElasticReport struct {
	Lifespan float64 `json:"lifespan"`
	// BaseN is the cluster size at time 0; Joins counts machines that
	// entered mid-lifespan.
	BaseN  int    `json:"base_n"`
	Joins  int    `json:"joins"`
	Policy string `json:"policy"`
	// FaultFree is Theorem 2's W(L;P) for the intact base cluster — joins
	// can push Useful above it, making Degradation negative.
	FaultFree float64 `json:"fault_free_work"`
	// Useful is the decodable work returned by the lifespan: each unit
	// credited exactly once at its completing return.
	Useful float64 `json:"useful_work"`
	// Dispatched counts every send, so Lost and Overhead fold in both
	// fault damage and deliberate redundant duplication.
	Dispatched float64 `json:"dispatched_work"`
	Lost       float64 `json:"lost_work"`
	// Overhead is Dispatched/Useful (0 when nothing useful returned).
	Overhead float64 `json:"overhead"`
	// Degradation is 1 − Useful/FaultFree.
	Degradation float64 `json:"degradation"`
	// Units and UnitsCompleted count redundant work units (0 in salvage
	// modes, whose accounting is per send).
	Units          int `json:"units,omitempty"`
	UnitsCompleted int `json:"units_completed,omitempty"`
	// Rounds covers every dispatch round: replan rounds, or the base and
	// per-join-cohort recruit rounds of a redundant run. Decisions are the
	// replanner's ride-vs-replan choices (replan mode only).
	Rounds    []RoundReport    `json:"rounds,omitempty"`
	Decisions []DecisionReport `json:"decisions,omitempty"`
	Events    int              `json:"events"`
}

func (r *ElasticReport) finish() {
	r.Lost = r.Dispatched - r.Useful
	if r.Useful > 0 {
		r.Overhead = r.Dispatched / r.Useful
	}
	if r.FaultFree > 0 {
		r.Degradation = 1 - r.Useful/r.FaultFree
	}
}

// SimulateElastic runs the elastic-churn pipeline: plan may contain join
// events alongside crashes, outages, slowdowns, and blackouts, and pol
// decides what meets the churn.
//
// Salvage policies reuse the SimulateFaulty machinery: ride dispatches
// the base cluster's optimal protocol and lets it degrade (joins are
// never recruited); replan revisits the plan at every fault event — join
// instants included — and folds joined machines into fresh
// remaining-lifespan rounds whenever abandoning the in-flight round
// projects more salvage.
//
// Redundancy dispatches PlanRedundant's replicated or coded assignment on
// the base cluster at time 0 and recruits each join cohort with its own
// redundant round over the remaining lifespan; no reactive decisions are
// made — stragglers and losses are absorbed by the scheme, and only a
// unit's Need-th return counts.
//
// ctx bounds the computation as in SimulateFaulty.
func SimulateElastic(ctx context.Context, m model.Params, p profile.Profile, lifespan float64, plan fault.Plan, pol ElasticPolicy, opt Options) (ElasticReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := m.Validate(); err != nil {
		return ElasticReport{}, err
	}
	if !(lifespan > 0) || math.IsInf(lifespan, 0) {
		return ElasticReport{}, fmt.Errorf("sim: lifespan %v must be positive and finite", lifespan)
	}
	if err := plan.Validate(len(p)); err != nil {
		return ElasticReport{}, err
	}
	if err := pol.Validate(); err != nil {
		return ElasticReport{}, err
	}
	rep := ElasticReport{
		Lifespan: lifespan, BaseN: len(p), Joins: plan.NumJoins(),
		Policy: pol.String(), FaultFree: core.W(m, p, lifespan),
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	if !pol.Redundancy.Enabled() {
		if !pol.Replan {
			pr, err := OptimalFIFO(m, p, lifespan)
			if err != nil {
				return rep, err
			}
			res, err := RunCEPFaulty(m, p, pr, plan, opt)
			if err != nil {
				return rep, err
			}
			rep.Useful = res.CompletedBy(lifespan)
			rep.Dispatched = res.Dispatched
			rep.Events = res.Events
			rep.finish()
			return rep, nil
		}
		d, err := replanSimulate(ctx, m, p, lifespan, plan,
			DegradedReport{Lifespan: lifespan, FaultFree: rep.FaultFree, Replan: true}, opt)
		if err != nil {
			return rep, err
		}
		rep.Useful, rep.Dispatched = d.Salvaged, d.Dispatched
		rep.Rounds, rep.Decisions, rep.Events = d.Rounds, d.Decisions, d.Events
		rep.finish()
		return rep, nil
	}

	// Redundant policy: one combined dispatch over one shared channel. The
	// base cohort is planned proactively on the nominal base profile (no
	// knowledge of the plan); each join cohort — joiners sharing an
	// instant — is planned over its remaining lifespan and released into
	// the same FIFO queue at the join instant, competing with whatever is
	// still in flight.
	type cohort struct {
		at      float64
		members []int
		rho     profile.Profile
	}
	base := cohort{members: make([]int, len(p)), rho: p}
	for i := range base.members {
		base.members[i] = i
	}
	cohorts := []cohort{base}
	joins := plan.Joins()
	for lo := 0; lo < len(joins); {
		hi := lo
		for hi < len(joins) && joins[hi].At == joins[lo].At {
			hi++
		}
		c := cohort{at: joins[lo].At}
		for _, f := range joins[lo:hi] {
			c.members = append(c.members, f.Computer)
			c.rho = append(c.rho, f.Rho)
		}
		lo = hi
		if c.at < lifespan {
			cohorts = append(cohorts, c) // a later joiner is never dispatched
		}
	}

	var pr Protocol
	var asn Assignment
	type span struct{ lo, hi int }
	spans := make([]span, len(cohorts))
	rates := make([]float64, len(cohorts))
	for ci, c := range cohorts {
		cpr, casn, err := PlanRedundant(m, c.rho, lifespan-c.at, pol.Redundancy)
		if err != nil {
			return rep, err
		}
		posBase := len(pr.Order)
		spans[ci].lo = len(asn.Units)
		for k, local := range cpr.Order {
			pr.Order = append(pr.Order, c.members[local])
			pr.Alloc = append(pr.Alloc, cpr.Alloc[k])
		}
		for j := range casn.Units {
			unit := make([]int, len(casn.Units[j]))
			for x, pos := range casn.Units[j] {
				unit[x] = posBase + pos
			}
			asn.Units = append(asn.Units, unit)
			asn.Need = append(asn.Need, casn.Need[j])
			asn.Unit = append(asn.Unit, casn.Unit[j])
			asn.Start = append(asn.Start, c.at)
		}
		spans[ci].hi = len(asn.Units)
		clamped := make(profile.Profile, len(c.rho))
		for j, rho := range c.rho {
			clamped[j] = math.Min(1, rho)
		}
		eval, err := incr.New(m, clamped)
		if err != nil {
			return rep, err
		}
		rates[ci] = eval.WorkRate()
	}

	res, err := RunCEPRedundant(m, p, pr, asn, plan, opt)
	if err != nil {
		return rep, err
	}
	rep.Useful = res.UsefulBy(lifespan)
	rep.Dispatched = res.Dispatched
	rep.Events = res.Events
	rep.Units = len(res.Units)
	cutoff := lifespan * (1 + 1e-9)
	for _, u := range res.Units {
		if u.Returns >= u.Need && u.CompletedAt <= cutoff {
			rep.UnitsCompleted++
		}
	}
	for ci, c := range cohorts {
		var disp, salv stats.KahanSum
		for j := spans[ci].lo; j < spans[ci].hi; j++ {
			u := res.Units[j]
			for _, k := range u.Members {
				disp.Add(pr.Alloc[k])
			}
			if u.Returns >= u.Need && u.CompletedAt <= cutoff {
				salv.Add(u.Work)
			}
		}
		rep.Rounds = append(rep.Rounds, RoundReport{
			Start: c.at, End: lifespan, Computers: c.members,
			PlannedRate: rates[ci], Dispatched: disp.Sum(), Salvaged: salv.Sum(),
		})
	}
	rep.finish()
	return rep, nil
}
