package schedule_test

import (
	"fmt"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
)

// ExampleBuildFIFO constructs the optimal gap-free schedule and reads off
// the allocations — the concrete form of the paper's Figure 2.
func ExampleBuildFIFO() {
	env := model.Table1()
	s, err := schedule.BuildFIFO(env, profile.MustNew(1, 0.5, 0.25), 3600)
	if err != nil {
		panic(err)
	}
	for _, c := range s.Computers {
		fmt.Printf("ρ=%.2f gets %.0f units\n", c.Rho, c.Work)
	}
	fmt.Printf("total %.0f units, all results back at t=%.0f\n", s.TotalWork, s.Makespan())
	// Output:
	// ρ=1.00 gets 3600 units
	// ρ=0.50 gets 7200 units
	// ρ=0.25 gets 14399 units
	// total 25198 units, all results back at t=3600
}

// ExampleBuildLIFO shows a non-FIFO finishing order losing work, as
// Adler–Gong–Rosenberg's Theorem 1 requires.
func ExampleBuildLIFO() {
	env := model.Table1()
	p := profile.MustNew(1, 0.95, 0.9)
	fifo, _ := schedule.BuildFIFO(env, p, 1000)
	lifo, err := schedule.BuildLIFO(env, p, 1000)
	if err != nil {
		fmt.Println("LIFO infeasible for this cluster")
		return
	}
	fmt.Printf("LIFO completes less than FIFO: %v\n", lifo.TotalWork < fifo.TotalWork)
	// Output: LIFO completes less than FIFO: true
}
