package schedule

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// BuildFIFOLinks constructs the gap-free FIFO schedule for a
// link-heterogeneous cluster: computer i communicates over its own link
// with transit rate taus[i] (per work unit), so Aᵢ = π + τᵢ and its result
// transit costs τᵢδw. This extends the paper's uniform-τ model along its
// own §1 motivation ("layered networks of varying speeds", [12]).
//
// The allocation recurrence generalizes to
//
//	wᵢ₊₁·(Bρᵢ₊₁ + Aᵢ₊₁) = wᵢ·(Bρᵢ + τᵢδ)
//
// and the lifespan equation to L = (A₁ + Bρ₁)·w₁ + δ·Σᵢ τᵢwᵢ. Crucially,
// work production is NO LONGER invariant under the startup order: with
// non-uniform links, Theorem 1.2 fails and ordering the cluster becomes a
// real optimization problem (see experiments.LinkOrderStudy).
func BuildFIFOLinks(m model.Params, p profile.Profile, taus []float64, lifespan float64) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("schedule: empty profile")
	}
	if len(taus) != n {
		return nil, fmt.Errorf("schedule: %d link rates for %d computers", len(taus), n)
	}
	for i, tau := range taus {
		if !(tau > 0) || math.IsInf(tau, 0) {
			return nil, fmt.Errorf("schedule: link rate τ[%d] = %v must be positive and finite", i, tau)
		}
	}
	if !(lifespan > 0) {
		return nil, fmt.Errorf("schedule: lifespan %v must be positive", lifespan)
	}
	b, d := m.B(), m.Delta
	a := func(i int) float64 { return m.Pi + taus[i] }

	// wᵢ = cᵢ·w₁ via the per-link recurrence.
	c := make([]float64, n)
	c[0] = 1
	for i := 1; i < n; i++ {
		c[i] = c[i-1] * (b*p[i-1] + taus[i-1]*d) / (b*p[i] + a(i))
		if math.IsInf(c[i], 0) || c[i] == 0 {
			return nil, fmt.Errorf("schedule: link allocation coefficients left float64 range at computer %d", i)
		}
	}
	var tail stats.KahanSum
	for i := 0; i < n; i++ {
		tail.Add(c[i] * taus[i] * d)
	}
	w1 := lifespan / (a(0) + b*p[0] + tail.Sum())
	w := make([]float64, n)
	for i := range w {
		w[i] = c[i] * w1
	}
	return assembleLinks(m, p, taus, lifespan, w)
}

// LinkWork returns just the total work of the link-heterogeneous FIFO
// schedule — the objective for order-search experiments — without
// materializing timelines.
func LinkWork(m model.Params, p profile.Profile, taus []float64, lifespan float64) (float64, error) {
	s, err := BuildFIFOLinks(m, p, taus, lifespan)
	if err != nil {
		return 0, err
	}
	return s.TotalWork, nil
}

func assembleLinks(m model.Params, p profile.Profile, taus []float64, lifespan float64, w []float64) (*Schedule, error) {
	b, d := m.B(), m.Delta
	n := len(p)
	s := &Schedule{
		Params:      m,
		Profile:     p.Clone(),
		Lifespan:    lifespan,
		Computers:   make([]ComputerTimeline, n),
		FinishOrder: identityOrder(n),
	}
	recvEnd := make([]float64, n)
	tPrev := 0.0
	for i := 0; i < n; i++ {
		end := tPrev + (m.Pi+taus[i])*w[i]
		s.ChannelBusy = append(s.ChannelBusy, Segment{SegReceive, tPrev, end})
		recvEnd[i] = end
		tPrev = end
	}
	lastSendEnd := tPrev

	finish := make([]float64, n)
	for i := 0; i < n; i++ {
		finish[i] = recvEnd[i] + b*p[i]*w[i]
	}
	for i := 1; i < n; i++ {
		want := finish[i-1] + taus[i-1]*d*w[i-1]
		if math.Abs(finish[i]-want) > 1e-9*lifespan {
			return nil, fmt.Errorf("schedule: internal error, link chain has a gap at computer %d", i)
		}
		finish[i] = want
	}
	if finish[0] < lastSendEnd-1e-9*lifespan {
		return nil, fmt.Errorf("schedule: infeasible for these links: first results ready at %v before the channel frees at %v", finish[0], lastSendEnd)
	}

	var total stats.KahanSum
	for i := 0; i < n; i++ {
		wi := w[i]
		rho := p[i]
		recvStart := recvEnd[i] - (m.Pi+taus[i])*wi
		unpackEnd := recvEnd[i] + m.Pi*rho*wi
		computeEnd := unpackEnd + rho*wi
		packEnd := finish[i]
		retEnd := packEnd + taus[i]*d*wi
		s.Computers[i] = ComputerTimeline{
			Index: i,
			Rho:   rho,
			Tau:   taus[i],
			Work:  wi,
			Segments: []Segment{
				{SegWait, 0, recvStart},
				{SegReceive, recvStart, recvEnd[i]},
				{SegUnpack, recvEnd[i], unpackEnd},
				{SegCompute, unpackEnd, computeEnd},
				{SegPack, computeEnd, packEnd},
				{SegReturn, packEnd, retEnd},
			},
			ResultsArrive: retEnd,
		}
		s.ChannelBusy = append(s.ChannelBusy, Segment{SegReturn, packEnd, retEnd})
		total.Add(wi)
	}
	s.TotalWork = total.Sum()
	return s, nil
}
