package schedule

import (
	"math"
	"strings"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func TestBuildFIFOBasicInvariants(t *testing.T) {
	m := model.Table1()
	s, err := BuildFIFO(m, profile.MustNew(1, 0.5, 0.25), 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(s.Computers) != 3 {
		t.Fatalf("computers = %d", len(s.Computers))
	}
}

func TestScheduleWorkMatchesTheorem2Exactly(t *testing.T) {
	// The gap-free FIFO construction realizes Theorem 2's W(L;P) exactly,
	// not just asymptotically.
	m := model.Table1()
	r := stats.NewRNG(211)
	for trial := 0; trial < 100; trial++ {
		p := profile.RandomNormalized(r, 1+r.Intn(10))
		l := r.InRange(100, 1e5)
		s, err := BuildFIFO(m, p, l)
		if err != nil {
			t.Fatalf("build failed for %v: %v", p, err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("invariants violated for %v: %v", p, err)
		}
		want := core.W(m, p, l)
		if math.Abs(s.TotalWork-want) > 1e-9*want {
			t.Fatalf("schedule work %v != W(L;P) %v for %v", s.TotalWork, want, p)
		}
	}
}

func TestTheorem1OrderInvariance(t *testing.T) {
	// Theorem 1.2: every startup order yields the same total work (the
	// timelines differ; the work does not).
	m := model.Table1()
	r := stats.NewRNG(223)
	for trial := 0; trial < 50; trial++ {
		p := profile.RandomNormalized(r, 2+r.Intn(8))
		l := 1000.0
		base, err := BuildFIFO(m, p, l)
		if err != nil {
			t.Fatal(err)
		}
		perm := r.Perm(len(p))
		alt, err := BuildFIFO(m, p.Permuted(perm), l)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(base.TotalWork-alt.TotalWork) > 1e-9*base.TotalWork {
			t.Fatalf("work differs across startup orders: %v vs %v (%v, perm %v)", base.TotalWork, alt.TotalWork, p, perm)
		}
	}
}

func TestAllocationsRecurrence(t *testing.T) {
	// wᵢ₊₁(Bρᵢ₊₁ + A) = wᵢ(Bρᵢ + τδ).
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	w, err := Allocations(m, p, 500)
	if err != nil {
		t.Fatal(err)
	}
	a, b, td := m.A(), m.B(), m.TauDelta()
	for i := 0; i+1 < len(w); i++ {
		lhs := w[i+1] * (b*p[i+1] + a)
		rhs := w[i] * (b*p[i] + td)
		if math.Abs(lhs-rhs) > 1e-9*rhs {
			t.Fatalf("recurrence violated at %d: %v != %v", i, lhs, rhs)
		}
	}
}

func TestFasterComputersGetMoreWork(t *testing.T) {
	// Under FIFO, later/faster computers in a power-indexed profile receive
	// (weakly) more work: wᵢ₊₁/wᵢ = (Bρᵢ+τδ)/(Bρᵢ₊₁+A) > 1 when
	// ρᵢ ≥ ρᵢ₊₁ (τδ < A but Bρᵢ ≥ Bρᵢ₊₁ dominates for the paper's
	// parameter scales).
	m := model.Table1()
	p := profile.Linear(8)
	w, err := Allocations(m, p, 3600)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(w); i++ {
		if w[i+1] <= w[i] {
			t.Fatalf("allocation not increasing toward faster computers: w[%d]=%v w[%d]=%v", i, w[i], i+1, w[i+1])
		}
	}
}

func TestLifespanEquation(t *testing.T) {
	// L = (A + Bρ₁)w₁ + τδ·W.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	l := 777.0
	s, err := BuildFIFO(m, p, l)
	if err != nil {
		t.Fatal(err)
	}
	w1 := s.Computers[0].Work
	got := (m.A()+m.B()*p[0])*w1 + m.TauDelta()*s.TotalWork
	if math.Abs(got-l) > 1e-9*l {
		t.Fatalf("lifespan equation gives %v, want %v", got, l)
	}
}

func TestScheduleScalesLinearly(t *testing.T) {
	m := model.Table1()
	p := profile.Linear(5)
	s1, err := BuildFIFO(m, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := BuildFIFO(m, p, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.TotalWork-2*s1.TotalWork) > 1e-9*s2.TotalWork {
		t.Fatalf("work not linear in L: %v vs 2×%v", s2.TotalWork, s1.TotalWork)
	}
}

func TestBuildFIFORejectsBadInput(t *testing.T) {
	m := model.Table1()
	p := profile.Linear(3)
	if _, err := BuildFIFO(m, p, 0); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := BuildFIFO(m, p, -5); err == nil {
		t.Fatal("negative L accepted")
	}
	if _, err := BuildFIFO(m, profile.Profile{}, 10); err == nil {
		t.Fatal("empty profile accepted")
	}
	if _, err := BuildFIFO(model.Params{}, p, 10); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestInfeasibleLargeClusterDetected(t *testing.T) {
	// For a large harmonic cluster the seriatim protocol's outbound phase
	// outlasts the first computer's busy period and the gap-free chain is
	// impossible; the builder must say so rather than emit an overlapping
	// schedule.
	m := model.Table1()
	p := profile.Harmonic(2000)
	_, err := BuildFIFO(m, p, 1e6)
	if err == nil {
		t.Fatal("expected infeasibility error for n=2000 harmonic cluster")
	}
	if !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSingleComputerSchedule(t *testing.T) {
	// n = 1 reduces to Figure 1's seven-phase pipeline (modulo the server's
	// trailing unpack, which is off the channel path).
	m := model.Table1()
	p := profile.MustNew(0.5)
	s, err := BuildFIFO(m, p, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	c := s.Computers[0]
	w := c.Work
	if d := c.Segment(SegReceive).Duration(); math.Abs(d-m.A()*w) > 1e-12*w {
		t.Fatalf("receive duration %v, want Aw=%v", d, m.A()*w)
	}
	if d := c.Segment(SegCompute).Duration(); math.Abs(d-0.5*w) > 1e-12*w {
		t.Fatalf("compute duration %v, want ρw=%v", d, 0.5*w)
	}
	if d := c.Segment(SegUnpack).Duration(); math.Abs(d-m.Pi*0.5*w) > 1e-12*w {
		t.Fatalf("unpack duration %v, want πρw=%v", d, m.Pi*0.5*w)
	}
}

func TestMakespanEqualsLifespan(t *testing.T) {
	m := model.Table1()
	s, err := BuildFIFO(m, profile.Linear(6), 1234)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan()-1234) > 1e-6 {
		t.Fatalf("makespan = %v", s.Makespan())
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	m := model.Table1()
	build := func() *Schedule {
		s, err := BuildFIFO(m, profile.MustNew(1, 0.5, 0.25), 3600)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// A clean schedule passes.
	if err := build().Verify(); err != nil {
		t.Fatal(err)
	}
	// Negative allocation.
	s := build()
	s.Computers[1].Work = -1
	if s.Verify() == nil {
		t.Fatal("negative allocation passed Verify")
	}
	// Channel overlap.
	s = build()
	s.ChannelBusy[1].Start = s.ChannelBusy[0].Start
	if s.Verify() == nil {
		t.Fatal("overlapping channel intervals passed Verify")
	}
	// Broken result chain.
	s = build()
	for k := range s.Computers[2].Segments {
		s.Computers[2].Segments[k].Start += 1
		s.Computers[2].Segments[k].End += 1
	}
	if s.Verify() == nil {
		t.Fatal("shifted timeline passed Verify")
	}
}

func TestSegmentLookupPanicsOnMissing(t *testing.T) {
	c := &ComputerTimeline{Segments: []Segment{{Kind: SegWait}}}
	defer func() {
		if recover() == nil {
			t.Fatal("missing segment lookup did not panic")
		}
	}()
	c.Segment(SegCompute)
}

func TestSegmentKindString(t *testing.T) {
	for kind, want := range map[SegmentKind]string{
		SegWait: "wait", SegReceive: "recv", SegUnpack: "unpack",
		SegCompute: "compute", SegPack: "pack", SegReturn: "return",
	} {
		if kind.String() != want {
			t.Fatalf("kind %d String = %q", int(kind), kind.String())
		}
	}
	if got := SegmentKind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind String = %q", got)
	}
}
