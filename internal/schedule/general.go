package schedule

import (
	"fmt"
	"math"

	"hetero/internal/linalg"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// BuildGeneral constructs the gap-free worksharing schedule for an
// arbitrary finishing order Φ — the general (Σ,Φ) protocols of §2.2, of
// which FIFO (Φ = Σ) is the provably optimal special case.
//
// The profile's own order is the startup order Σ; phi[j] gives the position
// (within that order) of the j-th computer to return results. The gap-free
// conditions ("computers work continuously, result messages chain without
// idle channel time, the last return ends at L") form an n×n linear system
// in the allocations:
//
//	F_i = A·Σ_{k: σ-pos(k) ≤ σ-pos(i)} w_k + Bρᵢwᵢ          (finish time)
//	F_{Φⱼ} = F_{Φⱼ₋₁} + τδ·w_{Φⱼ₋₁}   for j = 1..n−1        (no gaps)
//	F_{Φₙ₋₁} + τδ·w_{Φₙ₋₁} = L                               (lifespan)
//
// Orders whose solution has a non-positive allocation, or whose first
// return would collide with the outbound phase, are reported as infeasible:
// the corresponding protocol cannot run gap-free and necessarily completes
// less work (this is how LIFO-style orders lose to FIFO).
func BuildGeneral(m model.Params, p profile.Profile, phi []int, lifespan float64) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("schedule: empty profile")
	}
	if !(lifespan > 0) {
		return nil, fmt.Errorf("schedule: lifespan %v must be positive", lifespan)
	}
	if err := checkPermutation(phi, n); err != nil {
		return nil, err
	}
	a, b, td := m.A(), m.B(), m.TauDelta()

	// Row for F_i as coefficients over w: A for every computer at or before
	// i in startup order, plus Bρᵢ on wᵢ itself.
	fRow := func(i int) []float64 {
		row := make([]float64, n)
		for k := 0; k <= i; k++ {
			row[k] = a
		}
		row[i] += b * p[i]
		return row
	}

	sys := linalg.NewMatrix(n, n)
	rhs := make([]float64, n)
	for j := 1; j < n; j++ {
		cur := fRow(phi[j])
		prev := fRow(phi[j-1])
		for k := 0; k < n; k++ {
			sys.Set(j-1, k, cur[k]-prev[k])
		}
		sys.Set(j-1, phi[j-1], sys.At(j-1, phi[j-1])-td)
		rhs[j-1] = 0
	}
	last := fRow(phi[n-1])
	last[phi[n-1]] += td
	for k := 0; k < n; k++ {
		sys.Set(n-1, k, last[k])
	}
	rhs[n-1] = lifespan

	w, err := linalg.Solve(sys, rhs)
	if err != nil {
		return nil, fmt.Errorf("schedule: (Σ,Φ) system unsolvable: %w", err)
	}
	if res := linalg.Residual(sys, w, rhs); res > 1e-6*lifespan {
		return nil, fmt.Errorf("schedule: (Σ,Φ) system ill-conditioned (residual %v)", res)
	}
	for i, wi := range w {
		if !(wi > 0) {
			return nil, fmt.Errorf("schedule: infeasible finishing order %v: allocation w[%d] = %v not positive", phi, i, wi)
		}
	}
	return assembleGeneral(m, p, phi, lifespan, w)
}

// BuildLIFO builds the schedule whose finishing order is the reverse of the
// startup order — the natural "last started, first finished" contrast to
// FIFO used by the protocol-comparison experiments.
func BuildLIFO(m model.Params, p profile.Profile, lifespan float64) (*Schedule, error) {
	n := len(p)
	phi := make([]int, n)
	for j := range phi {
		phi[j] = n - 1 - j
	}
	return BuildGeneral(m, p, phi, lifespan)
}

func assembleGeneral(m model.Params, p profile.Profile, phi []int, lifespan float64, w []float64) (*Schedule, error) {
	a, b, td := m.A(), m.B(), m.TauDelta()
	n := len(p)
	s := &Schedule{
		Params:      m,
		Profile:     p.Clone(),
		Lifespan:    lifespan,
		Computers:   make([]ComputerTimeline, n),
		FinishOrder: append([]int(nil), phi...),
	}

	recvEnd := make([]float64, n)
	tPrev := 0.0
	for i := 0; i < n; i++ {
		end := tPrev + a*w[i]
		s.ChannelBusy = append(s.ChannelBusy, Segment{SegReceive, tPrev, end})
		recvEnd[i] = end
		tPrev = end
	}
	lastSendEnd := tPrev

	finish := make([]float64, n)
	for i := 0; i < n; i++ {
		finish[i] = recvEnd[i] + b*p[i]*w[i]
	}
	// Snap the finish times onto the exact gap-free chain (the linear
	// solve satisfies it up to rounding).
	for j := 1; j < n; j++ {
		want := finish[phi[j-1]] + td*w[phi[j-1]]
		if math.Abs(finish[phi[j]]-want) > 1e-6*lifespan {
			return nil, fmt.Errorf("schedule: internal error, solved chain has a gap at finisher %d", j)
		}
		finish[phi[j]] = want
	}
	if finish[phi[0]] < lastSendEnd-1e-9*lifespan {
		return nil, fmt.Errorf("schedule: infeasible finishing order %v: first results ready at %v before the channel frees at %v", phi, finish[phi[0]], lastSendEnd)
	}

	var total stats.KahanSum
	for i := 0; i < n; i++ {
		wi := w[i]
		rho := p[i]
		recvStart := recvEnd[i] - a*wi
		unpackEnd := recvEnd[i] + m.Pi*rho*wi
		computeEnd := unpackEnd + rho*wi
		packEnd := finish[i]
		retEnd := packEnd + td*wi
		s.Computers[i] = ComputerTimeline{
			Index: i,
			Rho:   rho,
			Tau:   m.Tau,
			Work:  wi,
			Segments: []Segment{
				{SegWait, 0, recvStart},
				{SegReceive, recvStart, recvEnd[i]},
				{SegUnpack, recvEnd[i], unpackEnd},
				{SegCompute, unpackEnd, computeEnd},
				{SegPack, computeEnd, packEnd},
				{SegReturn, packEnd, retEnd},
			},
			ResultsArrive: retEnd,
		}
		total.Add(wi)
	}
	// Channel return intervals in finishing order.
	for _, idx := range phi {
		c := s.Computers[idx]
		s.ChannelBusy = append(s.ChannelBusy, c.Segment(SegReturn))
	}
	s.TotalWork = total.Sum()
	return s, nil
}

func checkPermutation(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("schedule: finishing order has %d entries for %d computers", len(perm), n)
	}
	seen := make([]bool, n)
	for _, idx := range perm {
		if idx < 0 || idx >= n || seen[idx] {
			return fmt.Errorf("schedule: finishing order %v is not a permutation of [0,%d)", perm, n)
		}
		seen[idx] = true
	}
	return nil
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
