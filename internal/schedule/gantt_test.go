package schedule

import (
	"math"
	"strings"
	"testing"

	"hetero/internal/model"
	"hetero/internal/profile"
)

func TestGanttRendersAllRows(t *testing.T) {
	m := model.Table1()
	s, err := BuildFIFO(m, profile.MustNew(1, 0.5, 0.25), 3600)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Gantt(80)
	if !strings.Contains(out, "channel") {
		t.Fatal("missing channel row")
	}
	for _, frag := range []string{"C1", "C2", "C3", "legend"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Gantt missing %q:\n%s", frag, out)
		}
	}
	// Compute should dominate the picture at these parameters.
	if strings.Count(out, "C")-strings.Count(out, "Cha") < 10 {
		t.Fatalf("Gantt has suspiciously little compute:\n%s", out)
	}
}

func TestGanttMinimumWidth(t *testing.T) {
	m := model.Table1()
	s, err := BuildFIFO(m, profile.MustNew(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Gantt(1) // clamps to 10
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestTableRender(t *testing.T) {
	m := model.Table1()
	s, err := BuildFIFO(m, profile.MustNew(1, 0.5), 100)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Table()
	if !strings.Contains(out, "total work") {
		t.Fatalf("Table output:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + 2 rows + total
		t.Fatalf("Table has %d lines:\n%s", lines, out)
	}
}

func TestSingleTimelineFigure1(t *testing.T) {
	// Figure 1's seven phases with their durations, for w work units.
	m := model.Table1()
	w := 100.0
	rho := 0.5
	phases := SingleTimeline(m.Pi, m.Tau, m.Pi, m.Delta, rho, w)
	if len(phases) != 7 {
		t.Fatalf("phases = %d, want 7", len(phases))
	}
	want := []float64{
		m.Pi * w,                 // π₀w
		m.Tau * w,                // τw
		m.Pi * rho * w,           // πᵢw (balanced: scaled by ρ)
		rho * w,                  // ρᵢw
		m.Pi * rho * m.Delta * w, // πᵢδw
		m.Tau * m.Delta * w,      // τδw
		m.Pi * m.Delta * w,       // π₀δw
	}
	for i, ph := range phases {
		if math.Abs(ph.Duration-want[i]) > 1e-12*w {
			t.Fatalf("phase %d (%s) duration %v, want %v", i, ph.Label, ph.Duration, want[i])
		}
	}
	// Compute dominates for coarse tasks.
	if phases[3].Duration < 1000*phases[1].Duration {
		t.Fatal("compute should dwarf transit at Table 1 parameters")
	}
}
