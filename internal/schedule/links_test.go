package schedule

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func uniformTaus(n int, tau float64) []float64 {
	taus := make([]float64, n)
	for i := range taus {
		taus[i] = tau
	}
	return taus
}

func TestLinksUniformReducesToFIFO(t *testing.T) {
	// With all links at the model's τ, the link builder must reproduce the
	// uniform FIFO schedule exactly.
	m := model.Table1()
	r := stats.NewRNG(61)
	for trial := 0; trial < 30; trial++ {
		p := profile.RandomNormalized(r, 1+r.Intn(8))
		base, err := BuildFIFO(m, p, 700)
		if err != nil {
			t.Fatal(err)
		}
		links, err := BuildFIFOLinks(m, p, uniformTaus(len(p), m.Tau), 700)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(base.TotalWork-links.TotalWork) > 1e-9*base.TotalWork {
			t.Fatalf("uniform links work %v != FIFO %v", links.TotalWork, base.TotalWork)
		}
		for i := range base.Computers {
			if math.Abs(base.Computers[i].Work-links.Computers[i].Work) > 1e-9*base.Computers[i].Work {
				t.Fatalf("allocation %d differs", i)
			}
		}
		if err := links.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLinksVerifyPasses(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	taus := []float64{1e-6, 5e-5, 2e-4}
	s, err := BuildFIFOLinks(m, p, taus, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// Per-computer Tau recorded for the verifier and renderers.
	for i, c := range s.Computers {
		if c.Tau != taus[i] {
			t.Fatalf("computer %d Tau = %v, want %v", i, c.Tau, taus[i])
		}
	}
}

func TestLinksLifespanEquation(t *testing.T) {
	// L = (A₁ + Bρ₁)w₁ + δ·Σ τᵢwᵢ.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	taus := []float64{2e-6, 4e-5, 3e-4}
	l := 500.0
	s, err := BuildFIFOLinks(m, p, taus, l)
	if err != nil {
		t.Fatal(err)
	}
	sum := (m.Pi + taus[0] + m.B()*p[0]) * s.Computers[0].Work
	for i, c := range s.Computers {
		sum += m.Delta * taus[i] * c.Work
	}
	if math.Abs(sum-l) > 1e-9*l {
		t.Fatalf("lifespan equation gives %v, want %v", sum, l)
	}
}

func TestLinksBreakOrderInvariance(t *testing.T) {
	// The headline property: with heterogeneous links, Theorem 1.2 fails —
	// different startup orders complete different amounts of work.
	m := model.Table1()
	p := profile.MustNew(0.5, 0.5, 0.5) // identical computers…
	taus := []float64{1e-6, 1e-3, 1e-2} // …on very different links
	l := 1000.0
	wForward, err := LinkWork(m, p, taus, l)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse both the computers and their links (the link belongs to the
	// computer, so it moves with it).
	wReverse, err := LinkWork(m, profile.MustNew(0.5, 0.5, 0.5), []float64{1e-2, 1e-3, 1e-6}, l)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(wForward-wReverse) < 1e-6 {
		t.Fatalf("order invariance unexpectedly survived heterogeneous links: %v vs %v", wForward, wReverse)
	}
}

func TestLinksValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	if _, err := BuildFIFOLinks(m, p, []float64{1e-6}, 100); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := BuildFIFOLinks(m, p, []float64{1e-6, 0}, 100); err == nil {
		t.Fatal("zero link rate accepted")
	}
	if _, err := BuildFIFOLinks(m, p, []float64{1e-6, -1}, 100); err == nil {
		t.Fatal("negative link rate accepted")
	}
	if _, err := BuildFIFOLinks(m, p, uniformTaus(2, 1e-6), 0); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := BuildFIFOLinks(m, profile.Profile{}, nil, 100); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestLinksSlowLinksReduceWork(t *testing.T) {
	// Degrading every link can only hurt.
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	fast, err := LinkWork(m, p, uniformTaus(3, 1e-6), 1000)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := LinkWork(m, p, uniformTaus(3, 1e-2), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !(slow < fast) {
		t.Fatalf("slower links did not reduce work: %v vs %v", slow, fast)
	}
}

func TestLinksUniformMatchesTheorem2(t *testing.T) {
	m := model.Table1()
	p := profile.Linear(6)
	w, err := LinkWork(m, p, uniformTaus(6, m.Tau), 1234)
	if err != nil {
		t.Fatal(err)
	}
	want := core.W(m, p, 1234)
	if math.Abs(w-want) > 1e-9*want {
		t.Fatalf("uniform-link work %v != W(L;P) %v", w, want)
	}
}
