package schedule

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
)

// FuzzBuildFIFO exercises the schedule builder with arbitrary material:
// whenever a schedule is produced it must pass its own invariant checker
// and match Theorem 2 exactly.
func FuzzBuildFIFO(f *testing.F) {
	f.Add(1.0, 0.5, 0.25, 100.0)
	f.Add(0.001, 1.0, 0.001, 1e6)
	m := model.Table1()
	f.Fuzz(func(t *testing.T, a, b, c, lRaw float64) {
		rhos := make([]float64, 0, 3)
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
			r := math.Mod(math.Abs(v), 1)
			if r == 0 {
				continue
			}
			rhos = append(rhos, r)
		}
		if len(rhos) == 0 {
			return
		}
		p, err := profile.New(rhos...)
		if err != nil {
			return
		}
		if math.IsNaN(lRaw) || math.IsInf(lRaw, 0) {
			return
		}
		lifespan := math.Mod(math.Abs(lRaw), 1e9)
		if lifespan == 0 {
			return
		}
		s, err := BuildFIFO(m, p, lifespan)
		if err != nil {
			return // infeasible inputs are allowed to fail, not to corrupt
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("built schedule violates invariants: %v (profile %v, L %v)", err, p, lifespan)
		}
		want := core.W(m, p, lifespan)
		if math.Abs(s.TotalWork-want) > 1e-6*want {
			t.Fatalf("schedule work %v != W(L;P) %v", s.TotalWork, want)
		}
	})
}
