package schedule

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	var recurse func(prefix []int, rest []int)
	recurse = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			recurse(append(prefix, rest[i]), next)
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	recurse(nil, idx)
	return out
}

func TestGeneralIdentityMatchesFIFO(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	fifo, err := BuildFIFO(m, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := BuildGeneral(m, p, []int{0, 1, 2}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fifo.TotalWork-gen.TotalWork) > 1e-6 {
		t.Fatalf("identity Φ work %v != FIFO %v", gen.TotalWork, fifo.TotalWork)
	}
	for i := range fifo.Computers {
		if math.Abs(fifo.Computers[i].Work-gen.Computers[i].Work) > 1e-6 {
			t.Fatalf("allocation %d differs: %v vs %v", i, fifo.Computers[i].Work, gen.Computers[i].Work)
		}
	}
	if err := gen.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOIsOptimalAmongAllFinishingOrders(t *testing.T) {
	// Adler–Gong–Rosenberg's Theorem 1 (the paper's foundation), checked
	// exhaustively for n = 4: among all gap-free (Σ,Φ) protocols, FIFO
	// (Φ = identity) completes the most work, and every feasible non-FIFO
	// order completes strictly less.
	m := model.Table1()
	p := profile.MustNew(1, 0.6, 0.35, 0.2)
	const lifespan = 1000.0
	fifo, err := BuildFIFO(m, p, lifespan)
	if err != nil {
		t.Fatal(err)
	}
	feasible, infeasible := 0, 0
	for _, phi := range permutations(4) {
		s, err := BuildGeneral(m, p, phi, lifespan)
		if err != nil {
			infeasible++
			continue
		}
		feasible++
		if err := s.Verify(); err != nil {
			t.Fatalf("Φ=%v: %v", phi, err)
		}
		if s.TotalWork > fifo.TotalWork+1e-6 {
			t.Fatalf("Φ=%v beats FIFO: %v > %v", phi, s.TotalWork, fifo.TotalWork)
		}
		isIdentity := phi[0] == 0 && phi[1] == 1 && phi[2] == 2 && phi[3] == 3
		if !isIdentity && s.TotalWork > fifo.TotalWork-1e-9 {
			t.Fatalf("non-FIFO Φ=%v ties FIFO: %v vs %v", phi, s.TotalWork, fifo.TotalWork)
		}
	}
	if feasible < 2 {
		t.Fatalf("only %d feasible orders; test vacuous", feasible)
	}
	t.Logf("feasible orders: %d, infeasible: %d (of 24)", feasible, infeasible)
}

func TestGeneralStartupOrderInvarianceOfFIFO(t *testing.T) {
	// Theorem 1.2 again, through the general solver: identity Φ with any
	// startup order Σ gives the same work.
	m := model.Table1()
	r := stats.NewRNG(99)
	p := profile.RandomNormalized(r, 5)
	base, err := BuildGeneral(m, p, identityOrder(5), 500)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		perm := r.Perm(5)
		s, err := BuildGeneral(m, p.Permuted(perm), identityOrder(5), 500)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.TotalWork-base.TotalWork) > 1e-6 {
			t.Fatalf("FIFO work depends on Σ: %v vs %v", s.TotalWork, base.TotalWork)
		}
	}
}

func TestLIFOCompletesLessThanFIFO(t *testing.T) {
	m := model.Table1()
	// A mildly heterogeneous profile keeps LIFO feasible; strong
	// heterogeneity tends to make reversed orders infeasible outright.
	p := profile.MustNew(1, 0.95, 0.9, 0.85)
	fifo, err := BuildFIFO(m, p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	lifo, err := BuildLIFO(m, p, 1000)
	if err != nil {
		t.Skipf("LIFO infeasible for this profile: %v", err)
	}
	if err := lifo.Verify(); err != nil {
		t.Fatal(err)
	}
	if !(lifo.TotalWork < fifo.TotalWork) {
		t.Fatalf("LIFO %v did not lose to FIFO %v", lifo.TotalWork, fifo.TotalWork)
	}
}

func TestGeneralMatchesTheorem2ForFIFO(t *testing.T) {
	m := model.Table1()
	r := stats.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(7)
		p := profile.RandomNormalized(r, n)
		s, err := BuildGeneral(m, p, identityOrder(n), 800)
		if err != nil {
			t.Fatal(err)
		}
		want := core.W(m, p, 800)
		if math.Abs(s.TotalWork-want) > 1e-6*want {
			t.Fatalf("general FIFO work %v != Theorem 2 %v", s.TotalWork, want)
		}
	}
}

func TestGeneralValidation(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5)
	cases := []struct {
		name string
		phi  []int
		l    float64
	}{
		{"short phi", []int{0}, 100},
		{"dup phi", []int{0, 0}, 100},
		{"oob phi", []int{0, 2}, 100},
		{"zero L", []int{0, 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildGeneral(m, p, tc.phi, tc.l); err == nil {
				t.Fatal("accepted")
			}
		})
	}
	if _, err := BuildGeneral(m, profile.Profile{}, []int{}, 100); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestGeneralGanttRenders(t *testing.T) {
	m := model.Table1()
	p := profile.MustNew(1, 0.95, 0.9)
	s, err := BuildLIFO(m, p, 500)
	if err != nil {
		t.Skipf("LIFO infeasible: %v", err)
	}
	if out := s.Gantt(60); len(out) == 0 {
		t.Fatal("empty render")
	}
}
