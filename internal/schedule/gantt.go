package schedule

import (
	"fmt"
	"strings"
)

// ganttGlyphs maps segment kinds to the single-character texture used in
// the ASCII Gantt chart.
var ganttGlyphs = map[SegmentKind]byte{
	SegWait:    '.',
	SegReceive: 'r',
	SegUnpack:  'u',
	SegCompute: 'C',
	SegPack:    'p',
	SegReturn:  'T',
}

// Gantt renders the schedule as an ASCII chart in the style of the paper's
// Figure 2: one row per computer plus a channel row, width columns wide.
// Each column covers Lifespan/width time units; a column shows the segment
// that covers the column's midpoint.
func (s *Schedule) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FIFO worksharing schedule: n=%d, L=%g, W=%.6g work units\n", len(s.Computers), s.Lifespan, s.TotalWork)
	fmt.Fprintf(&b, "legend: r=receive u=unpack C=compute p=pack T=return .=wait\n")
	scale := s.Lifespan / float64(width)

	// Channel row.
	row := make([]byte, width)
	for i := range row {
		row[i] = '.'
	}
	for _, seg := range s.ChannelBusy {
		fill(row, seg, scale)
	}
	fmt.Fprintf(&b, "%-8s |%s|\n", "channel", row)

	for _, c := range s.Computers {
		for i := range row {
			row[i] = '.'
		}
		for _, seg := range c.Segments {
			if seg.Kind != SegWait {
				fill(row, seg, scale)
			}
		}
		fmt.Fprintf(&b, "C%-3d ρ=%-6.3g |%s| w=%.4g\n", c.Index+1, c.Rho, row, c.Work)
	}
	return b.String()
}

func fill(row []byte, seg Segment, scale float64) {
	glyph := ganttGlyphs[seg.Kind]
	for col := range row {
		mid := (float64(col) + 0.5) * scale
		if mid >= seg.Start && mid < seg.End {
			row[col] = glyph
		}
	}
}

// Table renders the schedule as a numeric table, one row per computer.
func (s *Schedule) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %10s %12s %12s %12s %12s %12s\n",
		"i", "ρ", "w_i", "recv end", "busy end", "ret start", "ret end")
	for _, c := range s.Computers {
		fmt.Fprintf(&b, "%4d %10.5g %12.6g %12.6g %12.6g %12.6g %12.6g\n",
			c.Index+1, c.Rho, c.Work,
			c.Segment(SegReceive).End,
			c.Segment(SegPack).End,
			c.Segment(SegReturn).Start,
			c.ResultsArrive)
	}
	fmt.Fprintf(&b, "total work %.8g over lifespan %g\n", s.TotalWork, s.Lifespan)
	return b.String()
}

// SingleTimeline returns the seven-phase action/time breakdown of the
// paper's Figure 1 — worksharing w units with a single remote computer of
// speed ρ — as (label, duration) pairs in time order: server pack, transit,
// unpack, compute, pack results, transit results, server unpack.
func SingleTimeline(pi0, tau, pi, delta, rho, w float64) []struct {
	Label    string
	Duration float64
} {
	mk := func(label string, d float64) struct {
		Label    string
		Duration float64
	} {
		return struct {
			Label    string
			Duration float64
		}{label, d}
	}
	return []struct {
		Label    string
		Duration float64
	}{
		mk("π₀w  server packages work", pi0*w),
		mk("τw   work in transit", tau*w),
		mk("πᵢw  computer unpackages", pi*rho*w),
		mk("ρᵢw  computer computes", rho*w),
		mk("πᵢδw computer packages results", pi*rho*delta*w),
		mk("τδw  results in transit", tau*delta*w),
		mk("π₀δw server unpackages results", pi0*delta*w),
	}
}
