// Package schedule constructs explicit FIFO worksharing schedules for the
// Cluster-Exploitation Problem — the protocol of §2.2–2.3 of the paper,
// realized as a concrete event timeline rather than an asymptotic formula.
//
// Timeline model (store-and-forward, one message in transit at a time):
//
//	server:   packages+transmits w₁ | packages+transmits w₂ | …   (A·wᵢ each)
//	Cᵢ:       waits | unpack πρᵢwᵢ | compute ρᵢwᵢ | package πρᵢδwᵢ | …
//	channel:  … | results of C₁ (τδw₁) | results of C₂ (τδw₂) | …
//
// The gap-free FIFO allocation obeys the recurrence
//
//	wᵢ₊₁·(Bρ_{sᵢ₊₁} + A) = wᵢ·(Bρ_{sᵢ} + τδ),
//
// so each computer finishes packaging its results exactly when the channel
// frees up, and the lifespan equation L = (A + Bρ_{s₁})·w₁ + τδ·W pins w₁.
// With this construction, total work equals Theorem 2's W(L;P) exactly —
// the "asymptotic" formula is exact for the protocol as modelled here (the
// only end effect outside it is the server's final result unpacking, which
// the model keeps off the channel's critical path; see package sim).
//
// The builder reports infeasibility when the first result would be ready
// before the last outbound send has released the channel (possible for very
// large or very fast clusters), since the paper's seriatim protocol cannot
// interleave result messages between work messages.
package schedule

import (
	"fmt"
	"math"

	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/stats"
)

// Segment is one labelled interval of a computer's (or the channel's)
// timeline.
type Segment struct {
	Kind  SegmentKind
	Start float64
	End   float64
}

// Duration returns End − Start.
func (s Segment) Duration() float64 { return s.End - s.Start }

// SegmentKind labels what a Segment represents.
type SegmentKind int

const (
	// SegWait is idle time before the computer's work arrives.
	SegWait SegmentKind = iota
	// SegReceive is the inbound work message (server packaging + transit).
	SegReceive
	// SegUnpack is the computer unpackaging its work (πρw).
	SegUnpack
	// SegCompute is the computation proper (ρw).
	SegCompute
	// SegPack is packaging the results (πρδw).
	SegPack
	// SegReturn is the result message's transit back to the server (τδw).
	SegReturn
)

// String returns the short label used by the Gantt renderer.
func (k SegmentKind) String() string {
	switch k {
	case SegWait:
		return "wait"
	case SegReceive:
		return "recv"
	case SegUnpack:
		return "unpack"
	case SegCompute:
		return "compute"
	case SegPack:
		return "pack"
	case SegReturn:
		return "return"
	default:
		return fmt.Sprintf("SegmentKind(%d)", int(k))
	}
}

// ComputerTimeline is the full schedule of one remote computer.
type ComputerTimeline struct {
	// Index within the startup order (0-based): this computer is s_{Index+1}.
	Index int
	// Rho is the computer's ρ-value.
	Rho float64
	// Tau is the transit rate of this computer's link (equal to the
	// model's uniform τ except in link-heterogeneous schedules).
	Tau float64
	// Work is the allocation wᵢ in work units.
	Work float64
	// Segments in time order: receive, unpack, compute, pack, return.
	Segments []Segment
	// ResultsArrive is when the server has fully received this computer's
	// results — the moment its Work units count as complete.
	ResultsArrive float64
}

// Segment returns this computer's segment of the given kind.
func (c *ComputerTimeline) Segment(kind SegmentKind) Segment {
	for _, s := range c.Segments {
		if s.Kind == kind {
			return s
		}
	}
	panic(fmt.Sprintf("schedule: timeline has no %v segment", kind))
}

// Schedule is a fully-instantiated worksharing schedule.
type Schedule struct {
	Params   model.Params
	Profile  profile.Profile // in startup order
	Lifespan float64
	// Computers, in startup order.
	Computers []ComputerTimeline
	// FinishOrder[j] is the position (within Computers) of the j-th
	// computer to return its results — the finishing indexing Φ of §2.2.
	// For FIFO schedules it is the identity.
	FinishOrder []int
	// TotalWork is Σwᵢ; for FIFO it equals Theorem 2's W(L;P) exactly.
	TotalWork float64
	// ChannelBusy lists every interval during which the shared channel is
	// occupied, in time order: n outbound sends then n result returns.
	ChannelBusy []Segment
}

// BuildFIFO constructs the gap-free FIFO schedule for lifespan L, using the
// profile's own order as the startup (and hence finishing) order. By
// Theorem 1.2 the total work is the same for every order; the timeline
// itself differs.
func BuildFIFO(m model.Params, p profile.Profile, lifespan float64) (*Schedule, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(p) == 0 {
		return nil, fmt.Errorf("schedule: empty profile")
	}
	if !(lifespan > 0) {
		return nil, fmt.Errorf("schedule: lifespan %v must be positive", lifespan)
	}
	w, err := Allocations(m, p, lifespan)
	if err != nil {
		return nil, err
	}
	return assemble(m, p, lifespan, w)
}

// Allocations returns the gap-free FIFO work allocations wᵢ (in the
// profile's order) for lifespan L.
func Allocations(m model.Params, p profile.Profile, lifespan float64) ([]float64, error) {
	a, b, td := m.A(), m.B(), m.TauDelta()
	n := len(p)
	// Coefficients cᵢ with w_i = cᵢ·w₁.
	c := make([]float64, n)
	c[0] = 1
	var csum stats.KahanSum
	csum.Add(1)
	for i := 1; i < n; i++ {
		c[i] = c[i-1] * (b*p[i-1] + td) / (b*p[i] + a)
		csum.Add(c[i])
		if math.IsInf(c[i], 0) || c[i] == 0 {
			return nil, fmt.Errorf("schedule: allocation coefficients left float64 range at computer %d", i)
		}
	}
	w1 := lifespan / (a + b*p[0] + td*csum.Sum())
	w := make([]float64, n)
	for i := range w {
		w[i] = c[i] * w1
	}
	return w, nil
}

func assemble(m model.Params, p profile.Profile, lifespan float64, w []float64) (*Schedule, error) {
	a, b, td := m.A(), m.B(), m.TauDelta()
	n := len(p)
	s := &Schedule{
		Params:      m,
		Profile:     p.Clone(),
		Lifespan:    lifespan,
		Computers:   make([]ComputerTimeline, n),
		FinishOrder: identityOrder(n),
	}
	var total stats.KahanSum

	// Outbound sends are seriatim from t = 0.
	recvEnd := make([]float64, n)
	tPrev := 0.0
	for i := 0; i < n; i++ {
		end := tPrev + a*w[i]
		s.ChannelBusy = append(s.ChannelBusy, Segment{SegReceive, tPrev, end})
		recvEnd[i] = end
		tPrev = end
	}
	lastSendEnd := tPrev

	// Busy blocks and the gap-free result chain.
	finish := make([]float64, n)
	for i := 0; i < n; i++ {
		finish[i] = recvEnd[i] + b*p[i]*w[i]
	}
	for i := 1; i < n; i++ {
		// The recurrence should make Fᵢ₊₁ land exactly at Fᵢ + τδwᵢ;
		// tolerate only float rounding.
		want := finish[i-1] + td*w[i-1]
		if math.Abs(finish[i]-want) > 1e-9*lifespan {
			return nil, fmt.Errorf("schedule: internal error, result chain has a gap at computer %d (%v vs %v)", i, finish[i], want)
		}
		finish[i] = want // snap to the exact chain
	}
	if finish[0] < lastSendEnd-1e-9*lifespan {
		return nil, fmt.Errorf("schedule: infeasible for this profile: first results ready at %v before the channel frees at %v; the seriatim FIFO protocol cannot interleave (cluster too large/fast for this L-independent constraint)", finish[0], lastSendEnd)
	}

	for i := 0; i < n; i++ {
		wi := w[i]
		rho := p[i]
		recvStart := recvEnd[i] - a*wi
		unpackEnd := recvEnd[i] + m.Pi*rho*wi
		computeEnd := unpackEnd + rho*wi
		// The pack segment ends at Bρw after unpack started; snap it to the
		// gap-free chain value (they agree up to float rounding, which the
		// chain check above has already bounded).
		packEnd := finish[i]
		retEnd := packEnd + td*wi
		ct := ComputerTimeline{
			Index: i,
			Rho:   rho,
			Tau:   m.Tau,
			Work:  wi,
			Segments: []Segment{
				{SegWait, 0, recvStart},
				{SegReceive, recvStart, recvEnd[i]},
				{SegUnpack, recvEnd[i], unpackEnd},
				{SegCompute, unpackEnd, computeEnd},
				{SegPack, computeEnd, packEnd},
				{SegReturn, packEnd, retEnd},
			},
			ResultsArrive: retEnd,
		}
		s.Computers[i] = ct
		s.ChannelBusy = append(s.ChannelBusy, Segment{SegReturn, packEnd, retEnd})
		total.Add(wi)
	}
	s.TotalWork = total.Sum()
	return s, nil
}

// Makespan returns when the last results arrive at the server — by
// construction, the lifespan L.
func (s *Schedule) Makespan() float64 {
	if len(s.Computers) == 0 {
		return 0
	}
	return s.Computers[s.FinishOrder[len(s.FinishOrder)-1]].ResultsArrive
}

// Verify checks every structural invariant of a gap-free worksharing
// schedule and returns the first violation found:
//
//   - all allocations positive, FinishOrder a permutation;
//   - each computer's busy block lasts exactly Bρw and begins when its work
//     has fully arrived;
//   - results return in the finishing order Φ with no channel gaps;
//   - the channel never carries two messages at once;
//   - the last results arrive at L.
func (s *Schedule) Verify() error {
	eps := 1e-9 * math.Max(s.Lifespan, 1)
	b := s.Params.B()
	if len(s.FinishOrder) != len(s.Computers) {
		return fmt.Errorf("schedule: finishing order has %d entries for %d computers", len(s.FinishOrder), len(s.Computers))
	}
	seen := make([]bool, len(s.Computers))
	for _, idx := range s.FinishOrder {
		if idx < 0 || idx >= len(s.Computers) || seen[idx] {
			return fmt.Errorf("schedule: finishing order %v is not a permutation", s.FinishOrder)
		}
		seen[idx] = true
	}
	for i, c := range s.Computers {
		if !(c.Work > 0) {
			return fmt.Errorf("schedule: computer %d has non-positive allocation %v", i, c.Work)
		}
		busy := c.Segment(SegPack).End - c.Segment(SegUnpack).Start
		if math.Abs(busy-b*c.Rho*c.Work) > eps {
			return fmt.Errorf("schedule: computer %d busy %v, want Bρw = %v", i, busy, b*c.Rho*c.Work)
		}
		if c.Segment(SegUnpack).Start+eps < c.Segment(SegReceive).End {
			return fmt.Errorf("schedule: computer %d starts unpacking before its work arrives", i)
		}
		for k := 1; k < len(c.Segments); k++ {
			if math.Abs(c.Segments[k].Start-c.Segments[k-1].End) > eps {
				return fmt.Errorf("schedule: computer %d has a gap between %v and %v", i, c.Segments[k-1].Kind, c.Segments[k].Kind)
			}
		}
		ctd := c.Tau * s.Params.Delta
		if math.Abs(c.Segment(SegReturn).Duration()-ctd*c.Work) > eps {
			return fmt.Errorf("schedule: computer %d return transit %v, want τᵢδw = %v", i, c.Segment(SegReturn).Duration(), ctd*c.Work)
		}
	}
	for j := 1; j < len(s.FinishOrder); j++ {
		prev := s.Computers[s.FinishOrder[j-1]]
		cur := s.Computers[s.FinishOrder[j]]
		gap := cur.Segment(SegReturn).Start - prev.Segment(SegReturn).End
		if math.Abs(gap) > eps {
			return fmt.Errorf("schedule: result chain gap of %v between finishers %d and %d", gap, j-1, j)
		}
		if cur.ResultsArrive < prev.ResultsArrive {
			return fmt.Errorf("schedule: results arrive out of finishing order between finishers %d and %d", j-1, j)
		}
	}
	// Channel exclusivity: busy intervals, sorted as constructed
	// (sends then returns), must not overlap.
	for k := 1; k < len(s.ChannelBusy); k++ {
		if s.ChannelBusy[k].Start+eps < s.ChannelBusy[k-1].End {
			return fmt.Errorf("schedule: channel carries two messages at once around t = %v", s.ChannelBusy[k].Start)
		}
	}
	if math.Abs(s.Makespan()-s.Lifespan) > eps {
		return fmt.Errorf("schedule: makespan %v != lifespan %v", s.Makespan(), s.Lifespan)
	}
	return nil
}
