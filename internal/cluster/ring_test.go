package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing("", []string{"a:1"}, 0); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewRing("a:1", []string{"a:1", ""}, 0); err == nil {
		t.Fatal("empty member accepted")
	}
	r, err := NewRing("a:1", nil, 0)
	if err != nil {
		t.Fatalf("self-only ring: %v", err)
	}
	if r.Size() != 1 || r.Self() != "a:1" {
		t.Fatalf("self-only ring: size=%d self=%q", r.Size(), r.Self())
	}
}

func TestRingPermutationInvariant(t *testing.T) {
	a, err := NewRing("b:2", []string{"a:1", "b:2", "c:3", "d:4"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing("d:4", []string{"d:4", "c:3", "b:2", "a:1", "d:4"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Members()) != fmt.Sprint(b.Members()) {
		t.Fatalf("memberships differ: %v vs %v", a.Members(), b.Members())
	}
	for h := uint64(0); h < 1<<16; h += 97 {
		oa, _ := a.Owner(h * 0x9e3779b97f4a7c15)
		ob, _ := b.Owner(h * 0x9e3779b97f4a7c15)
		if oa != ob {
			t.Fatalf("owners diverge at h=%d: %q vs %q", h, oa, ob)
		}
	}
}

func TestRingSelfFlag(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3"}
	rings := make(map[string]*Ring, len(members))
	for _, m := range members {
		r, err := NewRing(m, members, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[m] = r
	}
	for i := 0; i < 5000; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		owner, _ := rings["a:1"].Owner(h)
		for m, r := range rings {
			got, self := r.Owner(h)
			if got != owner {
				t.Fatalf("ring of %q disagrees on owner of %d: %q vs %q", m, h, got, owner)
			}
			if self != (m == owner) {
				t.Fatalf("ring of %q: self=%v but owner=%q", m, self, owner)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"a:1", "b:2", "c:3", "d:4"}
	r, err := NewRing("a:1", members, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 40000
	for i := 0; i < n; i++ {
		owner, _ := r.Owner(uint64(i) * 0x9e3779b97f4a7c15)
		counts[owner]++
	}
	for m, c := range counts {
		frac := float64(c) / n
		// With 64 vnodes/member over 4 members, shares should sit near 25%;
		// allow a generous band so the test pins balance, not exact placement.
		if frac < 0.10 || frac > 0.45 {
			t.Fatalf("member %q owns %.1f%% of keys (counts=%v)", m, 100*frac, counts)
		}
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), len(members), counts)
	}
}

func TestRingWraparound(t *testing.T) {
	r, err := NewRing("a:1", []string{"a:1", "b:2"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	top := r.points[len(r.points)-1].hash
	if top == ^uint64(0) {
		t.Skip("top point at max hash; wraparound untestable with this seed")
	}
	// Any hash past the last point wraps to the first point's owner.
	wantOwner := r.members[r.points[0].member]
	got, _ := r.Owner(top + 1)
	if got != wantOwner {
		t.Fatalf("wraparound owner = %q, want %q", got, wantOwner)
	}
}
