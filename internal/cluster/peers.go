package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Peer-protocol defaults. The hedge delay follows the tail-at-scale rule of
// thumb — hedge after roughly the expected p95 of a healthy loopback/LAN
// fetch, so hedges are rare under normal operation but cap the tail when the
// owner stalls. The timeout bounds the whole fetch (both attempts) so a
// degraded fleet degrades to local evaluation, never to unavailability.
const (
	DefaultHedgeDelay = 2 * time.Millisecond
	DefaultTimeout    = 250 * time.Millisecond

	// maxPeerBody caps one fetched response body. Cached bodies are already
	// bounded by the owner's cache byte budget; the cap only guards against a
	// misbehaving endpoint streaming forever.
	maxPeerBody = 64 << 20
)

// Peer-protocol paths, mounted by internal/api on every replica. Both are
// POST with the key in the request body (canonical keys and raw-query keys
// run to hundreds of KB — far past safe request-line limits).
const (
	PeerGetPath = "/internal/peer/get"
	PeerPutPath = "/internal/peer/put"
)

// Layer prefixes namespace the two cache layers a peer can serve inside the
// one protocol. The first byte of a get/put body selects the layer; the rest
// is the key. 'c' = the canonical params|profile layer, 'r' = the raw-query
// front layer (exact query spelling → body).
const (
	LayerCanonical byte = 'c'
	LayerRaw       byte = 'r'
)

// Config configures a fleet's peer tier.
type Config struct {
	// Self is this replica's own address (host:port) as it appears in Peers.
	Self string
	// Peers is the full fleet membership, host:port per replica. Self is
	// added if absent. Every replica must be configured with the same set.
	Peers []string
	// HedgeDelay is how long a fetch waits on its first request before
	// issuing the hedged second one; 0 means DefaultHedgeDelay, negative
	// disables hedging.
	HedgeDelay time.Duration
	// Timeout bounds one whole fetch or push (all attempts); 0 means
	// DefaultTimeout.
	Timeout time.Duration
	// VNodes is the virtual-node count per member; 0 means
	// DefaultVirtualNodes.
	VNodes int
}

// PeerStat is one peer's client-side counters, snapshotted for /v1/statz.
type PeerStat struct {
	Addr       string `json:"addr"`
	Hits       uint64 `json:"hits"`        // fetches answered 200 (cached bytes served)
	Misses     uint64 `json:"misses"`      // fetches answered 404 (owner cold)
	Hedges     uint64 `json:"hedges"`      // hedged second requests issued
	HedgeWins  uint64 `json:"hedge_wins"`  // fetches whose winning response came from the hedge
	Fallbacks  uint64 `json:"fallbacks"`   // fetches that fell back to local evaluation (miss or error)
	Errors     uint64 `json:"errors"`      // fetches that failed outright (timeout, refused, bad status)
	Pushes     uint64 `json:"pushes"`      // locally computed bodies offered to this owner
	PushErrors uint64 `json:"push_errors"` // offers that failed (never fatal to the request)
}

// peerCounters is the live atomic form of PeerStat.
type peerCounters struct {
	hits, misses, hedges, hedgeWins, fallbacks, errors, pushes, pushErrors atomic.Uint64
}

// Peers is the peer tier of one replica: the ring plus the HTTP client and
// per-peer counters. Immutable after New (counters aside), safe for
// concurrent use.
type Peers struct {
	ring     *Ring
	cfg      Config
	client   *http.Client
	counters map[string]*peerCounters
}

// New builds the peer tier. Config.Self and at least one other member are
// required — a one-replica "fleet" has no peers to fetch from.
func New(cfg Config) (*Peers, error) {
	ring, err := NewRing(cfg.Self, cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if ring.Size() < 2 {
		return nil, fmt.Errorf("cluster: -peers lists no replica besides self %q", cfg.Self)
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = DefaultHedgeDelay
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	p := &Peers{
		ring: ring,
		cfg:  cfg,
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        4 * ring.Size(),
				MaxIdleConnsPerHost: 8,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		counters: make(map[string]*peerCounters, ring.Size()),
	}
	for _, m := range ring.Members() {
		p.counters[m] = &peerCounters{}
	}
	return p, nil
}

// Ring exposes the membership ring (ownership checks, statz).
func (p *Peers) Ring() *Ring { return p.ring }

// Self returns this replica's own address.
func (p *Peers) Self() string { return p.ring.Self() }

// Owner maps a key hash to its owning replica; self reports whether it is us.
func (p *Peers) Owner(h uint64) (addr string, self bool) { return p.ring.Owner(h) }

// fetchResult is one attempt's outcome inside a hedged fetch.
type fetchResult struct {
	body   []byte
	status int
	err    error
	hedged bool
}

// Fetch asks owner for the cached bytes under key in the given layer, with a
// hedged second request after HedgeDelay (first response wins; the loser is
// canceled through the shared context). ok = false means the caller must
// evaluate locally — the owner was cold (404), unreachable, or slow past
// Timeout; Fetch never returns partial bytes. The key is copied before any
// goroutine can outlive the call, so callers may pass pooled scratch.
func (p *Peers) Fetch(owner string, layer byte, key []byte) (body []byte, ok bool) {
	c := p.counters[owner]
	if c == nil {
		return nil, false // not a member; cannot happen with ring-derived owners
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()

	// The request body is layer + key; copy once and share it between the
	// primary and the hedge (bytes.Reader is per-attempt).
	framed := make([]byte, 0, len(key)+1)
	framed = append(framed, layer)
	framed = append(framed, key...)

	results := make(chan fetchResult, 2)
	attempt := func(hedged bool) {
		body, status, err := p.do(ctx, owner, PeerGetPath, framed)
		results <- fetchResult{body: body, status: status, err: err, hedged: hedged}
	}
	go attempt(false)

	outstanding := 1
	var timerC <-chan time.Time
	if p.cfg.HedgeDelay > 0 {
		timer := time.NewTimer(p.cfg.HedgeDelay)
		defer timer.Stop()
		timerC = timer.C
	}
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				// First completed response wins, whatever it says; cancel the
				// loser (ctx) via the deferred cancel on return.
				if r.hedged {
					c.hedgeWins.Add(1)
				}
				switch r.status {
				case http.StatusOK:
					c.hits.Add(1)
					return r.body, true
				case http.StatusNotFound:
					c.misses.Add(1)
					c.fallbacks.Add(1)
					return nil, false
				}
				// Unexpected status from a live peer: treat as an error but
				// keep waiting if another attempt is still in flight.
				r.err = fmt.Errorf("peer %s: status %d", owner, r.status)
			}
			if outstanding == 0 {
				_ = r.err
				c.errors.Add(1)
				c.fallbacks.Add(1)
				return nil, false
			}
		case <-timerC:
			timerC = nil
			c.hedges.Add(1)
			outstanding++
			go attempt(true)
		}
	}
}

// Push offers a locally computed body to the key's owner so the fleet warms
// once even when the first toucher was not the owner. Synchronous but
// bounded by Timeout, and best-effort: an error is counted, never surfaced —
// the caller already has the body it needs. Key and body are copied into the
// request before return.
func (p *Peers) Push(owner string, layer byte, key, body []byte) {
	c := p.counters[owner]
	if c == nil {
		return
	}
	c.pushes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.Timeout)
	defer cancel()
	framed := make([]byte, 0, len(key)+len(body)+2)
	framed = append(framed, layer)
	framed = append(framed, key...)
	framed = append(framed, '\n')
	framed = append(framed, body...)
	_, status, err := p.do(ctx, owner, PeerPutPath, framed)
	if err != nil || status != http.StatusNoContent {
		c.pushErrors.Add(1)
	}
}

// do issues one POST of body to owner+path and reads the (bounded) response.
func (p *Peers) do(ctx context.Context, owner, path string, reqBody []byte) (body []byte, status int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+owner+path, bytes.NewReader(reqBody))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody+1))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if len(out) > maxPeerBody {
		return nil, resp.StatusCode, fmt.Errorf("peer %s: response exceeds %d bytes", owner, maxPeerBody)
	}
	return out, resp.StatusCode, nil
}

// Stats snapshots every peer's client-side counters, self excluded (a
// replica never fetches from itself), sorted by address.
func (p *Peers) Stats() []PeerStat {
	out := make([]PeerStat, 0, p.ring.Size()-1)
	for _, m := range p.ring.Members() {
		if m == p.ring.Self() {
			continue
		}
		c := p.counters[m]
		out = append(out, PeerStat{
			Addr:       m,
			Hits:       c.hits.Load(),
			Misses:     c.misses.Load(),
			Hedges:     c.hedges.Load(),
			HedgeWins:  c.hedgeWins.Load(),
			Fallbacks:  c.fallbacks.Load(),
			Errors:     c.errors.Load(),
			Pushes:     c.pushes.Load(),
			PushErrors: c.pushErrors.Load(),
		})
	}
	return out
}

// HedgeDelay and Timeout expose the resolved tuning (statz, tests).
func (p *Peers) HedgeDelay() time.Duration { return p.cfg.HedgeDelay }
func (p *Peers) Timeout() time.Duration    { return p.cfg.Timeout }
