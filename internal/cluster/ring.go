// Package cluster is the distributed cache tier for a heterod fleet: a
// static-membership consistent-hash ring that assigns every cache key an
// owner replica, plus an HTTP peer client that fetches cached bytes from the
// owner with a hedged second request (Dean's tail-at-scale pattern) and
// pushes locally computed bodies back to the owner.
//
// The tier exists so a fleet of R replicas warms each canonical key once
// instead of R times: a replica that misses locally on a key it does not own
// asks the owner for the cached bytes before evaluating, and a replica that
// had to evaluate anyway (the owner was cold or unreachable) offers the
// result to the owner so the next asker hits. The protocol never triggers
// evaluation on the owner — /internal/peer/get serves cached bytes only — so
// a fleet-wide miss can never amplify into a fan-out of evaluations.
//
// Membership is static: every replica is started with the same -peers list
// and its own -self identity, so all rings agree without a coordination
// service. The ring hashes keys with the same sampled FNV-1a the cache
// shards use (the caller passes the hash), and hashes members onto the ring
// through virtual nodes so ownership stays balanced for small fleets.
package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual-node count. 64 points per
// member keeps the ownership imbalance of a handful of replicas within a few
// percent while the ring stays small enough to search in a few cache lines.
const DefaultVirtualNodes = 64

// Ring is a static-membership consistent-hash ring. Immutable after New, so
// every method is safe for concurrent use without locks.
type Ring struct {
	members []string // sorted, deduplicated replica addresses
	self    int      // index of this replica in members
	points  []point  // virtual nodes, sorted by hash
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member int32
}

// NewRing builds the ring for a fleet. members is the full replica list
// (every replica must be started with an identical list for the rings to
// agree); self must appear in it. vnodes ≤ 0 means DefaultVirtualNodes.
// Member order does not matter: the list is sorted and deduplicated, so any
// permutation yields the identical ring.
func NewRing(self string, members []string, vnodes int) (*Ring, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: self address is empty")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(members)+1)
	list := make([]string, 0, len(members)+1)
	for _, m := range append(append([]string(nil), members...), self) {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member address in peer list")
		}
		if !seen[m] {
			seen[m] = true
			list = append(list, m)
		}
	}
	sort.Strings(list)
	r := &Ring{members: list, self: sort.SearchStrings(list, self)}
	r.points = make([]point, 0, len(list)*vnodes)
	for i, m := range list {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(m, v), member: int32(i)})
		}
	}
	// Ties broken by member index keeps the sort — and therefore ownership —
	// deterministic even in the (astronomically unlikely) event of a hash
	// collision between two members' virtual nodes.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// vnodeHash places one virtual node: FNV-1a over "addr#v". It depends only
// on the member address strings, so identically configured replicas build
// identical rings.
func vnodeHash(addr string, v int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	h ^= uint64('#')
	h *= prime64
	for _, b := range strconv.Itoa(v) {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Owner maps a key hash to its owning replica: the first virtual node at or
// after the hash, wrapping at the top of the ring. self reports whether this
// replica is the owner (the caller then skips the peer fetch and evaluates
// locally, exactly as a non-clustered server would).
func (r *Ring) Owner(h uint64) (addr string, self bool) {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	m := int(r.points[i].member)
	return r.members[m], m == r.self
}

// Members returns the sorted fleet membership (self included).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Self returns this replica's own address.
func (r *Ring) Self() string { return r.members[r.self] }

// Size returns the number of replicas in the fleet.
func (r *Ring) Size() int { return len(r.members) }
