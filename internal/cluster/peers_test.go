package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestPeers builds a Peers whose only peer is the given test server.
func newTestPeers(t *testing.T, peer string, hedge, timeout time.Duration) *Peers {
	t.Helper()
	p, err := New(Config{
		Self:       "127.0.0.1:1", // never dialed: tests always fetch from the peer
		Peers:      []string{peer},
		HedgeDelay: hedge,
		Timeout:    timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hostOf(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	return strings.TrimPrefix(ts.URL, "http://")
}

func statFor(t *testing.T, p *Peers, addr string) PeerStat {
	t.Helper()
	for _, s := range p.Stats() {
		if s.Addr == addr {
			return s
		}
	}
	t.Fatalf("no stats for %q", addr)
	return PeerStat{}
}

func TestFetchHit(t *testing.T) {
	var gotBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotBody, _ = io.ReadAll(r.Body)
		w.Write([]byte(`{"x":1}`))
	}))
	defer ts.Close()
	addr := hostOf(t, ts)
	p := newTestPeers(t, addr, -1, time.Second)

	body, ok := p.Fetch(addr, LayerCanonical, []byte("key-1"))
	if !ok || string(body) != `{"x":1}` {
		t.Fatalf("fetch = %q, %v", body, ok)
	}
	if string(gotBody) != "ckey-1" {
		t.Fatalf("peer saw body %q, want %q", gotBody, "ckey-1")
	}
	s := statFor(t, p, addr)
	if s.Hits != 1 || s.Misses != 0 || s.Fallbacks != 0 || s.Errors != 0 {
		t.Fatalf("stats after hit: %+v", s)
	}
}

func TestFetchMissAndError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	defer ts.Close()
	addr := hostOf(t, ts)
	p := newTestPeers(t, addr, -1, time.Second)
	if _, ok := p.Fetch(addr, LayerRaw, []byte("k")); ok {
		t.Fatal("404 reported as hit")
	}
	s := statFor(t, p, addr)
	if s.Misses != 1 || s.Fallbacks != 1 || s.Errors != 0 {
		t.Fatalf("stats after miss: %+v", s)
	}

	// A dead peer is an error + fallback, bounded by the timeout.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadAddr := hostOf(t, dead)
	dead.Close()
	p2 := newTestPeers(t, deadAddr, -1, 200*time.Millisecond)
	start := time.Now()
	if _, ok := p2.Fetch(deadAddr, LayerCanonical, []byte("k")); ok {
		t.Fatal("dead peer reported as hit")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("dead-peer fetch took %v, want fast-fail", el)
	}
	s2 := statFor(t, p2, deadAddr)
	if s2.Errors != 1 || s2.Fallbacks != 1 {
		t.Fatalf("stats after error: %+v", s2)
	}
}

func TestFetchHedgeWin(t *testing.T) {
	// First request stalls; the hedge answers immediately. The hedge must win
	// and the stalled request must be canceled via the shared context.
	var calls atomic.Int32
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select {
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte("fast"))
	}))
	defer ts.Close()
	defer close(release)
	addr := hostOf(t, ts)
	p := newTestPeers(t, addr, 20*time.Millisecond, 5*time.Second)

	start := time.Now()
	body, ok := p.Fetch(addr, LayerCanonical, []byte("slow-key"))
	if !ok || string(body) != "fast" {
		t.Fatalf("fetch = %q, %v", body, ok)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("hedged fetch took %v, want ~hedge delay", el)
	}
	s := statFor(t, p, addr)
	if s.Hedges != 1 || s.HedgeWins != 1 || s.Hits != 1 {
		t.Fatalf("stats after hedge win: %+v", s)
	}
}

func TestFetchTimeout(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(block)
	addr := hostOf(t, ts)
	p := newTestPeers(t, addr, 5*time.Millisecond, 100*time.Millisecond)

	start := time.Now()
	if _, ok := p.Fetch(addr, LayerCanonical, []byte("k")); ok {
		t.Fatal("timed-out fetch reported as hit")
	}
	if el := time.Since(start); el < 50*time.Millisecond || el > 3*time.Second {
		t.Fatalf("timeout fetch took %v, want ~timeout", el)
	}
	s := statFor(t, p, addr)
	if s.Errors != 1 || s.Fallbacks != 1 || s.Hedges != 1 {
		t.Fatalf("stats after timeout: %+v", s)
	}
}

func TestPush(t *testing.T) {
	var gotBody []byte
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotBody, _ = io.ReadAll(r.Body)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	addr := hostOf(t, ts)
	p := newTestPeers(t, addr, -1, time.Second)

	p.Push(addr, LayerRaw, []byte("the-key"), []byte("the\nbody"))
	want := "rthe-key\nthe\nbody"
	if !bytes.Equal(gotBody, []byte(want)) {
		t.Fatalf("push framed %q, want %q", gotBody, want)
	}
	s := statFor(t, p, addr)
	if s.Pushes != 1 || s.PushErrors != 0 {
		t.Fatalf("stats after push: %+v", s)
	}

	// A rejecting owner counts a push error but nothing else breaks.
	rej := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer rej.Close()
	rejAddr := hostOf(t, rej)
	p2 := newTestPeers(t, rejAddr, -1, time.Second)
	p2.Push(rejAddr, LayerCanonical, []byte("k"), []byte("b"))
	s2 := statFor(t, p2, rejAddr)
	if s2.Pushes != 1 || s2.PushErrors != 1 {
		t.Fatalf("stats after rejected push: %+v", s2)
	}
}

func TestNewRequiresPeer(t *testing.T) {
	if _, err := New(Config{Self: "a:1", Peers: []string{"a:1"}}); err == nil {
		t.Fatal("single-member fleet accepted")
	}
	p, err := New(Config{Self: "a:1", Peers: []string{"b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if p.HedgeDelay() != DefaultHedgeDelay || p.Timeout() != DefaultTimeout {
		t.Fatalf("defaults not applied: hedge=%v timeout=%v", p.HedgeDelay(), p.Timeout())
	}
}
