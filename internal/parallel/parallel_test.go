package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapPreservesIndexing(t *testing.T) {
	got := Map(4, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestMapSingleWorkerDeterministicPath(t *testing.T) {
	got := Map(1, 5, func(i int) int { return i + 1 })
	if got[4] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestMapZeroN(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestForEachRunsEverythingOnce(t *testing.T) {
	var counts [200]int32
	ForEach(8, len(counts), func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var total int32
	ForEach(0, 50, func(i int) { atomic.AddInt32(&total, 1) })
	if total != 50 {
		t.Fatalf("total = %d", total)
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	e7 := errors.New("seven")
	e3 := errors.New("three")
	_, err := MapErr(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 7:
			return 0, e7
		default:
			return i, nil
		}
	})
	if err != e3 {
		t.Fatalf("err = %v, want lowest-index error %v", err, e3)
	}
}

func TestMapErrSuccess(t *testing.T) {
	got, err := MapErr(3, 4, func(i int) (int, error) { return 2 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestForEachPropagatesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic swallowed")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v lost the original message", r)
		}
	}()
	ForEach(4, 20, func(i int) {
		if i == 11 {
			panic("boom")
		}
	})
}

func TestForEachMoreWorkersThanWork(t *testing.T) {
	var total int32
	ForEach(64, 3, func(i int) { atomic.AddInt32(&total, 1) })
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
}

func TestForEachLargestFirstCoversAllOnce(t *testing.T) {
	weights := make([]int, 150)
	for i := range weights {
		weights[i] = (i * 37) % 19
	}
	var counts [150]int32
	ForEachLargestFirst(8, weights, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachLargestFirstDispatchOrder(t *testing.T) {
	// Serially (one worker) the dispatch order IS the visit order: strictly
	// decreasing weight, with ties keeping input order.
	weights := []int{3, 1, 4, 1, 5, 3}
	var visited []int
	ForEachLargestFirst(1, weights, func(i int) { visited = append(visited, i) })
	want := []int{4, 2, 0, 5, 1, 3}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visit order %v, want %v (LPT with stable ties)", visited, want)
		}
	}
}

func TestForEachLargestFirstEmpty(t *testing.T) {
	ForEachLargestFirst(4, nil, func(i int) { t.Fatal("fn called for empty weights") })
}

func TestNumChunks(t *testing.T) {
	cases := []struct{ n, chunk, want int }{
		{0, 4, 0}, {-1, 4, 0},
		{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3},
		{7, 0, 1}, {7, -3, 1}, {7, 100, 1},
	}
	for _, tc := range cases {
		if got := NumChunks(tc.n, tc.chunk); got != tc.want {
			t.Fatalf("NumChunks(%d, %d) = %d, want %d", tc.n, tc.chunk, got, tc.want)
		}
	}
}

func TestMapChunksTilesTheRange(t *testing.T) {
	// Every index must appear in exactly one chunk, chunks must be in range
	// order, and no chunk may exceed the requested size.
	for _, n := range []int{1, 3, 16, 17, 1000} {
		for _, chunk := range []int{1, 7, 16, 0} {
			type rng struct{ lo, hi int }
			got := MapChunks(4, n, chunk, func(lo, hi int) rng { return rng{lo, hi} })
			next := 0
			for _, r := range got {
				if r.lo != next || r.hi <= r.lo {
					t.Fatalf("n=%d chunk=%d: ranges %v not a tiling", n, chunk, got)
				}
				if chunk > 0 && r.hi-r.lo > chunk {
					t.Fatalf("n=%d chunk=%d: oversized range %v", n, chunk, r)
				}
				next = r.hi
			}
			if next != n {
				t.Fatalf("n=%d chunk=%d: tiling ends at %d", n, chunk, next)
			}
		}
	}
}

func TestMapChunksMatchesSerialFold(t *testing.T) {
	// Summing per-chunk partials in chunk order is scheduling-independent:
	// repeated runs must agree bit-for-bit with each other.
	n := 10_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1 / float64(i+1)
	}
	fold := func() float64 {
		var total float64
		for _, part := range MapChunks(8, n, 137, func(lo, hi int) float64 {
			var s float64
			for _, x := range xs[lo:hi] {
				s += x
			}
			return s
		}) {
			total += part
		}
		return total
	}
	first := fold()
	for i := 0; i < 10; i++ {
		if again := fold(); again != first {
			t.Fatalf("chunked fold is scheduling-dependent: %v vs %v", again, first)
		}
	}
}
