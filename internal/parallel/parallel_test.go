package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapPreservesIndexing(t *testing.T) {
	got := Map(4, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestMapSingleWorkerDeterministicPath(t *testing.T) {
	got := Map(1, 5, func(i int) int { return i + 1 })
	if got[4] != 5 {
		t.Fatalf("got %v", got)
	}
}

func TestMapZeroN(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestForEachRunsEverythingOnce(t *testing.T) {
	var counts [200]int32
	ForEach(8, len(counts), func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var total int32
	ForEach(0, 50, func(i int) { atomic.AddInt32(&total, 1) })
	if total != 50 {
		t.Fatalf("total = %d", total)
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	e7 := errors.New("seven")
	e3 := errors.New("three")
	_, err := MapErr(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 7:
			return 0, e7
		default:
			return i, nil
		}
	})
	if err != e3 {
		t.Fatalf("err = %v, want lowest-index error %v", err, e3)
	}
}

func TestMapErrSuccess(t *testing.T) {
	got, err := MapErr(3, 4, func(i int) (int, error) { return 2 * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got[3] != 6 {
		t.Fatalf("got %v", got)
	}
}

func TestForEachPropagatesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic swallowed")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value %v lost the original message", r)
		}
	}()
	ForEach(4, 20, func(i int) {
		if i == 11 {
			panic("boom")
		}
	})
}

func TestForEachMoreWorkersThanWork(t *testing.T) {
	var total int32
	ForEach(64, 3, func(i int) { atomic.AddInt32(&total, 1) })
	if total != 3 {
		t.Fatalf("total = %d", total)
	}
}
