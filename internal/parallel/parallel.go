// Package parallel provides the repository's worker-pool substrate:
// deterministic fan-out of independent trials across goroutines. Results
// land at their own indices, so aggregation order — and therefore every
// experiment's output — is independent of scheduling; panics in workers are
// captured and re-raised on the caller's goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// Map evaluates fn(0..n-1) on up to workers goroutines (0 means
// GOMAXPROCS) and returns the results indexed by input. fn must be safe
// for concurrent invocation on distinct indices.
func Map[T any](workers, n int, fn func(i int) T) []T {
	results := make([]T, n)
	ForEach(workers, n, func(i int) {
		results[i] = fn(i)
	})
	return results
}

// MapErr is Map for fallible work: it returns the results plus the first
// (lowest-index) error, evaluating everything regardless so that the
// results slice is fully populated for the indices that succeeded.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		results[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// ForEach runs fn(0..n-1) on up to workers goroutines and waits for all of
// them. A panic inside fn is re-raised on the calling goroutine (the first
// one observed wins).
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue interface{}
		panicked   bool
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicValue = r
								panicked = true
							})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked {
		panic(fmt.Sprintf("parallel: worker panicked: %v", panicValue))
	}
}
