// Package parallel provides the repository's worker-pool substrate:
// deterministic fan-out of independent trials across goroutines. Results
// land at their own indices, so aggregation order — and therefore every
// experiment's output — is independent of scheduling; panics in workers are
// captured and re-raised on the caller's goroutine.
package parallel

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Map evaluates fn(0..n-1) on up to workers goroutines (0 means
// GOMAXPROCS) and returns the results indexed by input. fn must be safe
// for concurrent invocation on distinct indices.
func Map[T any](workers, n int, fn func(i int) T) []T {
	results := make([]T, n)
	ForEach(workers, n, func(i int) {
		results[i] = fn(i)
	})
	return results
}

// MapErr is Map for fallible work: it returns the results plus the first
// (lowest-index) error, evaluating everything regardless so that the
// results slice is fully populated for the indices that succeeded.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	ForEach(workers, n, func(i int) {
		results[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// NumChunks returns how many contiguous chunks MapChunks splits n items
// into when each chunk holds at most chunk items (chunk ≤ 0 means one chunk
// per item is never produced; the whole range becomes a single chunk).
func NumChunks(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 || chunk >= n {
		return 1
	}
	return (n + chunk - 1) / chunk
}

// MapChunks evaluates fn over the contiguous ranges [lo, hi) that tile
// [0, n) in chunks of at most chunk items, fanning the chunks out over up to
// workers goroutines (0 means GOMAXPROCS), and returns the per-chunk results
// in range order. It is the substrate for the chunked evaluation kernels:
// a fold over a large profile becomes per-chunk partial folds (each with its
// own compensated accumulator) plus a cheap ordered combine on the caller's
// goroutine, so the combination order — and therefore the float result — is
// independent of goroutine scheduling.
func MapChunks[T any](workers, n, chunk int, fn func(lo, hi int) T) []T {
	nc := NumChunks(n, chunk)
	if nc == 0 {
		return nil
	}
	if nc == 1 {
		return []T{fn(0, n)}
	}
	return Map(workers, nc, func(ci int) T {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}

// ForEachLargestFirst is ForEach with longest-processing-time-first
// dispatch: indices are handed to workers in decreasing weight order, the
// classic LPT heuristic that tightens the makespan when item costs vary
// widely (a batch mixing n=500k and n=10 profiles, say). Ties keep input
// order, so the dispatch sequence is deterministic; fn still receives the
// original indices and results stay index-addressed.
func ForEachLargestFirst(workers int, weights []int, fn func(i int)) {
	n := len(weights)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	ForEach(workers, n, func(j int) { fn(order[j]) })
}

// ForEach runs fn(0..n-1) on up to workers goroutines and waits for all of
// them. A panic inside fn is re-raised on the calling goroutine (the first
// one observed wins).
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}

	var (
		wg         sync.WaitGroup
		panicOnce  sync.Once
		panicValue interface{}
		panicked   bool
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicValue = r
								panicked = true
							})
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked {
		panic(fmt.Sprintf("parallel: worker panicked: %v", panicValue))
	}
}
