// Package model defines the architectural model of §2.1 of the paper: the
// uniform network transit rate τ, the message-packaging rate π, the
// result-size ratio δ, and the derived per-work-unit constants
//
//	A = π + τ          (server packaging + transit, outbound)
//	B = 1 + (1+δ)π     (remote unpack + compute + repackage, per unit speed)
//
// Time is normalized so the slowest computer needs 1 time unit per work
// unit (ρ₁ = 1); τ and π are expressed in those same units. Computers are
// architecturally "balanced": a computer of speed ρ packages and unpackages
// at rate πρ per work unit, so its busy time per received unit is Bρ.
package model

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Params collects the environment parameters of the model. The zero value
// is invalid; use one of the preset constructors or fill the fields and call
// Validate.
type Params struct {
	// Tau is the network transit rate: time units to move one unit of work
	// between any two computers (pipelined rate; latency is ignored, per
	// §2.1). Must be positive.
	Tau float64 `json:"tau"`
	// Pi is the packaging rate of a speed-1 computer: time units to
	// packetize/compress/encode one unit of work. Unpackaging costs the
	// same (footnote 4). Must be non-negative.
	Pi float64 `json:"pi"`
	// Delta is the output-to-input ratio: each unit of work produces
	// δ ≤ 1 units of results. Must be in (0, 1].
	Delta float64 `json:"delta"`
}

// Table1 returns the parameter values of Table 1 of the paper, used for all
// its numeric illustrations: τ = 1 µs, π = 10 µs, δ = 1 per work unit, with
// the work unit taking 1 second on the slowest computer.
func Table1() Params {
	return Params{Tau: 1e-6, Pi: 10e-6, Delta: 1}
}

// Table1Fine returns the Table 1 values normalized for the "finer tasks"
// row of Table 2 (0.1 s per task): τ and π grow tenfold relative to the
// work-unit time.
func Table1Fine() Params {
	return Params{Tau: 1e-5, Pi: 10e-5, Delta: 1}
}

// Figs34 returns the parameters used to regenerate Figures 3 and 4. The
// paper raises τ to "200 µsec" to make the figures legible; reproducing the
// published 16-step phase structure requires the normalized value τ = 0.2
// (i.e. tasks of ≈1 ms), which puts the Theorem 4 threshold Aτδ/B² ≈ 0.040
// strictly between ψ·1·(1/16) and ψ·1·(1/8) for ψ = 1/2. See DESIGN.md §5.
func Figs34() Params {
	return Params{Tau: 0.2, Pi: 10e-6, Delta: 1}
}

// A returns π + τ, the per-unit cost of preparing and transmitting work.
func (p Params) A() float64 { return p.Pi + p.Tau }

// B returns 1 + (1+δ)π, the per-unit busy time of a speed-1 computer
// (unpack + compute + package results).
func (p Params) B() float64 { return 1 + (1+p.Delta)*p.Pi }

// TauDelta returns τδ, the per-unit transit cost of returning results.
func (p Params) TauDelta() float64 { return p.Tau * p.Delta }

// Theorem4Threshold returns K = Aτδ/B². Under a multiplicative speedup by
// ψ applied to one of {Cᵢ, Cⱼ} with ρᵢ > ρⱼ, speeding the faster computer
// wins iff ψρᵢρⱼ > K (Theorem 4).
func (p Params) Theorem4Threshold() float64 {
	b := p.B()
	return p.A() * p.TauDelta() / (b * b)
}

// Validate reports whether the parameters are admissible for the model:
// τ > 0, π ≥ 0, 0 < δ ≤ 1, and the standing assumption of §4.1 that
// τδ ≤ A ≤ B.
func (p Params) Validate() error {
	switch {
	case !(p.Tau > 0):
		return fmt.Errorf("model: transit rate τ = %v must be positive", p.Tau)
	case p.Pi < 0:
		return fmt.Errorf("model: packaging rate π = %v must be non-negative", p.Pi)
	case !(p.Delta > 0) || p.Delta > 1:
		return fmt.Errorf("model: result ratio δ = %v must be in (0,1]", p.Delta)
	}
	if p.TauDelta() > p.A() {
		return fmt.Errorf("model: τδ = %v exceeds A = %v, violating §4.1's assumption τδ ≤ A ≤ B", p.TauDelta(), p.A())
	}
	if p.A() > p.B() {
		return fmt.Errorf("model: A = %v exceeds B = %v, violating §4.1's assumption τδ ≤ A ≤ B", p.A(), p.B())
	}
	return nil
}

// String renders the parameters with their derived constants.
func (p Params) String() string {
	return fmt.Sprintf("Params{τ=%g, π=%g, δ=%g; A=%g, B=%g, τδ=%g}",
		p.Tau, p.Pi, p.Delta, p.A(), p.B(), p.TauDelta())
}

// MarshalJSON emits the raw parameters plus derived constants, so dumped
// experiment configurations are self-describing.
func (p Params) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Tau      float64 `json:"tau"`
		Pi       float64 `json:"pi"`
		Delta    float64 `json:"delta"`
		A        float64 `json:"a"`
		B        float64 `json:"b"`
		TauDelta float64 `json:"tau_delta"`
	}{p.Tau, p.Pi, p.Delta, p.A(), p.B(), p.TauDelta()})
}

// UnmarshalJSON accepts either the raw three parameters or the
// self-describing form produced by MarshalJSON (derived fields are ignored).
func (p *Params) UnmarshalJSON(data []byte) error {
	var raw struct {
		Tau   *float64 `json:"tau"`
		Pi    *float64 `json:"pi"`
		Delta *float64 `json:"delta"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Tau == nil || raw.Pi == nil || raw.Delta == nil {
		return errors.New("model: params JSON must include tau, pi and delta")
	}
	p.Tau, p.Pi, p.Delta = *raw.Tau, *raw.Pi, *raw.Delta
	return nil
}
