package model

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTable1Derived(t *testing.T) {
	p := Table1()
	if err := p.Validate(); err != nil {
		t.Fatalf("Table1 invalid: %v", err)
	}
	// Table 2 of the paper: A = 11 µs per work unit.
	if got, want := p.A(), 11e-6; math.Abs(got-want) > 1e-18 {
		t.Fatalf("A = %v, want %v", got, want)
	}
	// B = 1 + (1+δ)π = 1 + 20 µs with coarse (1 s/task) normalization.
	if got, want := p.B(), 1+20e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("B = %v, want %v", got, want)
	}
	if got, want := p.TauDelta(), 1e-6; got != want {
		t.Fatalf("τδ = %v, want %v", got, want)
	}
}

func TestTable1FineDerived(t *testing.T) {
	p := Table1Fine()
	if err := p.Validate(); err != nil {
		t.Fatalf("Table1Fine invalid: %v", err)
	}
	if got, want := p.A(), 11e-5; math.Abs(got-want) > 1e-17 {
		t.Fatalf("A = %v, want %v", got, want)
	}
}

func TestTheorem4ThresholdTable1(t *testing.T) {
	// §3.2.2: "with the values from Table 2, Aτδ/B² ≈ 1.1 × 10⁻⁵"... the
	// paper's text has a slip (A·τδ = 11e-6·1e-6 ≈ 1.1e-11); we assert the
	// formula, K = AτδB⁻².
	p := Table1()
	want := p.A() * p.TauDelta() / (p.B() * p.B())
	if got := p.Theorem4Threshold(); got != want {
		t.Fatalf("K = %v, want %v", got, want)
	}
	if p.Theorem4Threshold() > 2e-11 {
		t.Fatalf("K = %v implausibly large for Table 1 values", p.Theorem4Threshold())
	}
}

func TestFigs34ThresholdRegime(t *testing.T) {
	// The Fig. 3/4 narrative requires ψ·1·(1/16) < K < ψ·1·(1/8) for ψ = 1/2:
	// speeding the fastest computer keeps winning down to ρ = 1/8 (round 4,
	// ψρᵢρⱼ = 1/16 > K) and stops winning at ρ = 1/16 (round 5,
	// ψρᵢρⱼ = 1/32 < K).
	p := Figs34()
	if err := p.Validate(); err != nil {
		t.Fatalf("Figs34 invalid: %v", err)
	}
	k := p.Theorem4Threshold()
	if !(k > 0.5/16 && k < 0.5/8) {
		t.Fatalf("K = %v outside (ψ/16, ψ/8) = (%v, %v); Figures 3-4 would not reproduce", k, 0.5/16, 0.5/8)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		frag string
	}{
		{"zero tau", Params{Tau: 0, Pi: 1e-5, Delta: 1}, "τ"},
		{"negative tau", Params{Tau: -1, Pi: 1e-5, Delta: 1}, "τ"},
		{"negative pi", Params{Tau: 1e-6, Pi: -1, Delta: 1}, "π"},
		{"zero delta", Params{Tau: 1e-6, Pi: 1e-5, Delta: 0}, "δ"},
		{"delta above one", Params{Tau: 1e-6, Pi: 1e-5, Delta: 1.5}, "δ"},
		{"nan tau", Params{Tau: math.NaN(), Pi: 1e-5, Delta: 1}, "τ"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted invalid params", tc.p)
			}
			if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestSection41AssumptionHolds(t *testing.T) {
	// τδ ≤ A ≤ B must hold for every δ ∈ (0,1] whenever π ≥ 0: τδ ≤ τ ≤ π+τ
	// and A = π+τ ≤ 1+(1+δ)π = B as long as τ ≤ 1+δπ. Check a parameter
	// sweep that stays in the modelled regime (τ < 1).
	for _, tau := range []float64{1e-9, 1e-6, 1e-3, 0.2, 0.999} {
		for _, pi := range []float64{0, 1e-6, 1e-3, 0.5} {
			for _, delta := range []float64{0.01, 0.5, 1} {
				p := Params{Tau: tau, Pi: pi, Delta: delta}
				if err := p.Validate(); err != nil {
					t.Fatalf("Validate(%v) = %v; the §4.1 assumption should hold for τ<1", p, err)
				}
			}
		}
	}
}

func TestJSONRoundtrip(t *testing.T) {
	p := Table1()
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"tau"`, `"a"`, `"b"`, `"tau_delta"`} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("marshaled JSON missing %s: %s", field, data)
		}
	}
	var q Params
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatalf("roundtrip changed params: %v != %v", q, p)
	}
}

func TestJSONUnmarshalRejectsPartial(t *testing.T) {
	var p Params
	if err := json.Unmarshal([]byte(`{"tau":1e-6}`), &p); err == nil {
		t.Fatal("partial params accepted")
	}
}

func TestString(t *testing.T) {
	s := Table1().String()
	for _, frag := range []string{"τ=1e-06", "B=1.00002"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestValidateModelRegimeViolations(t *testing.T) {
	// τδ > A is impossible with δ ≤ 1 (τδ ≤ τ < π+τ), so the guard that
	// remains reachable is A > B: a transit rate slower than computing
	// itself (τ > 1 + δπ at π≈0).
	p := Params{Tau: 1.5, Pi: 0, Delta: 1}
	err := p.Validate()
	if err == nil {
		t.Fatal("A > B accepted")
	}
	if !strings.Contains(err.Error(), "§4.1") {
		t.Fatalf("error %q does not cite the assumption", err)
	}
}

func TestUnmarshalRejectsMalformedJSON(t *testing.T) {
	var p Params
	if err := json.Unmarshal([]byte(`{"tau": "not a number"}`), &p); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}
