package render

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Add("a", "1")
	tb.Add("longer", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	// Header, separator and rows must share the same width.
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "a     ") {
		t.Fatalf("row not padded: %q", lines[3])
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.Add("x")
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("row lost")
	}
}

func TestTablePanicsOnLongRow(t *testing.T) {
	tb := NewTable("", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("long row accepted")
		}
	}()
	tb.Add("1", "2")
}

func TestAddfFormats(t *testing.T) {
	tb := NewTable("", "n", "x", "s")
	tb.Addf(8, 0.123456789, "lit")
	row := tb.Rows[0]
	if row[0] != "8" || row[1] != "0.123457" || row[2] != "lit" {
		t.Fatalf("row = %v", row)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.Add("1", "x,y")
	tb.Add(`q"q`, "z")
	csv := tb.CSV()
	want := "a,b\n1,\"x,y\"\n\"q\"\"q\",z\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"C1", "C2"}, []float64{1, 0.5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines:\n%s", out)
	}
	if n1, n2 := strings.Count(lines[0], "#"), strings.Count(lines[1], "#"); n1 != 10 || n2 != 5 {
		t.Fatalf("bar lengths %d/%d, want 10/5", n1, n2)
	}
}

func TestBarsTinyValueVisible(t *testing.T) {
	out := Bars([]string{"a", "b"}, []float64{1, 1e-9}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Fatalf("tiny value invisible: %q", lines[1])
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch accepted")
		}
	}()
	Bars([]string{"a"}, []float64{1, 2}, 10)
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero value rendered bars: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 0.5, 1})
	runes := []rune(s)
	if len(runes) != 3 {
		t.Fatalf("length %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series %q", flat)
		}
	}
}
