// Package render provides the plain-text output substrate for the
// experiment drivers: aligned tables, CSV export, and ASCII bar charts in
// the style of the paper's Figures 3–4.
package render

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with optional title.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row. Short rows are padded with empty cells; long rows
// panic, since they indicate a programming error in an experiment driver.
func (t *Table) Add(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("render: row has %d cells for %d columns", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Addf appends a row of formatted cells; each argument is rendered with %v
// unless it is a float64, which is rendered with %.6g.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.6g", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.Add(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if w := len([]rune(cell)); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len([]rune(cell))))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes applied only when a
// cell contains a comma, quote, or newline).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// Bars renders one horizontal bar per (label, value) pair, scaled so the
// largest value spans width characters. Used to render the profile
// snapshots of Figures 3–4 (bar length ∝ ρ, so shrinking bars = speedups).
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("render: Bars label/value length mismatch")
	}
	if width < 1 {
		width = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxVal > 0 {
			n = int(v / maxVal * float64(width))
		}
		if n == 0 && v > 0 {
			n = 1 // keep nonzero values visible
		}
		fmt.Fprintf(&b, "%-*s |%s %.6g\n", maxLabel, labels[i], strings.Repeat("#", n), v)
	}
	return b.String()
}

// sparkGlyphs are the eight block heights used by Sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode strip, scaled to the
// sample's own min..max range (a flat series renders as all-minimum).
// Experiment renders use it to show per-round series inline.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		out[i] = sparkGlyphs[idx]
	}
	return string(out)
}
