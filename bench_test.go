// Package repro_test holds the benchmark harness that regenerates every
// table and figure of the paper (see DESIGN.md §3 for the experiment
// index). Each benchmark computes one published artifact per iteration and
// attaches the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's rows/series alongside the usual cost figures.
// The hetero CLI prints the same artifacts as formatted tables.
package repro_test

import (
	"net/http/httptest"
	"testing"

	"hetero/internal/adaptive"
	"hetero/internal/api"
	"hetero/internal/catalog"
	"hetero/internal/core"
	"hetero/internal/experiments"
	"hetero/internal/harness"
	"hetero/internal/hier"
	"hetero/internal/incr"
	"hetero/internal/model"
	"hetero/internal/parallel"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/sim"
	"hetero/internal/stats"
	"hetero/internal/workload"
)

// BenchmarkTable1Params regenerates Table 1's derived constants.
func BenchmarkTable1Params(b *testing.B) {
	var a float64
	for i := 0; i < b.N; i++ {
		m := model.Table1()
		a = m.A() + m.B() + m.TauDelta() + m.Theorem4Threshold()
	}
	b.ReportMetric(model.Table1().A()*1e6, "A_µs")
	b.ReportMetric(model.Table1().B(), "B_sec")
	_ = a
}

// BenchmarkTable2 regenerates Table 2.
func BenchmarkTable2(b *testing.B) {
	var r experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2()
	}
	b.ReportMetric(r.BCoarse, "B_coarse_sec")
	b.ReportMetric(r.BFine, "B_fine_sec")
}

// BenchmarkTable3HECR regenerates Table 3 (HECRs at n = 8, 16, 32).
func BenchmarkTable3HECR(b *testing.B) {
	var r experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3()
	}
	b.ReportMetric(r.Rows[0].HECRC1, "hecr_c1_n8")
	b.ReportMetric(r.Rows[0].HECRC2, "hecr_c2_n8")
	b.ReportMetric(r.Rows[2].HECRC1, "hecr_c1_n32")
	b.ReportMetric(r.Rows[2].HECRC2, "hecr_c2_n32")
	b.ReportMetric(r.Rows[2].Ratio, "advantage_n32")
}

// BenchmarkTable4WorkRatios regenerates Table 4 (additive speedups of
// ⟨1, 1/2, 1/3, 1/4⟩ by φ = 1/16).
func BenchmarkTable4WorkRatios(b *testing.B) {
	var r experiments.Table4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i, row := range r.Rows {
		names := []string{"ratio_c1", "ratio_c2", "ratio_c3", "ratio_c4"}
		b.ReportMetric(row.WorkRatio, names[i])
	}
}

// BenchmarkFig1Timeline regenerates Figure 1's seven-phase breakdown.
func BenchmarkFig1Timeline(b *testing.B) {
	m := model.Table1()
	var total float64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, ph := range schedule.SingleTimeline(m.Pi, m.Tau, m.Pi, m.Delta, 0.5, 100) {
			total += ph.Duration
		}
	}
	b.ReportMetric(total, "end_to_end_time")
}

// BenchmarkFig2Schedule regenerates Figure 2: building and verifying the
// 3-computer FIFO schedule.
func BenchmarkFig2Schedule(b *testing.B) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25)
	var w float64
	for i := 0; i < b.N; i++ {
		s, err := schedule.BuildFIFO(m, p, 3600)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
		w = s.TotalWork
	}
	b.ReportMetric(w, "work_units")
}

// BenchmarkFig3SpeedupPhase1 regenerates Figure 3: 16 greedy multiplicative
// speedup rounds from ⟨1,1,1,1⟩.
func BenchmarkFig3SpeedupPhase1(b *testing.B) {
	var r experiments.FigSpeedupResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig3()
		if err != nil {
			b.Fatal(err)
		}
	}
	seq := r.SelectionSequence()
	b.ReportMetric(float64(seq[0]), "round1_pick")
	b.ReportMetric(float64(seq[4]), "round5_pick")
	b.ReportMetric(r.Steps[15].After[0], "final_rho")
}

// BenchmarkFig4SpeedupPhase2 regenerates Figure 4: the phase-2 rounds where
// condition (2) of Theorem 4 takes over.
func BenchmarkFig4SpeedupPhase2(b *testing.B) {
	var r experiments.FigSpeedupResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.SelectionSequence()[0]), "round1_pick")
	b.ReportMetric(r.Steps[3].After[0], "final_rho")
}

// BenchmarkMeanCounterexample regenerates §4's intro example.
func BenchmarkMeanCounterexample(b *testing.B) {
	var r experiments.MeanCounterexampleResult
	for i := 0; i < b.N; i++ {
		r = experiments.MeanCounterexample()
	}
	b.ReportMetric(r.XHetero, "x_hetero")
	b.ReportMetric(r.XHomo, "x_homo")
}

// BenchmarkVariancePredictor regenerates (a scaled-down slice of) the §4.3
// study: equal-mean pairs, variance prediction vs HECR ground truth.
func BenchmarkVariancePredictor(b *testing.B) {
	cfg := experiments.VarianceConfig{
		Params:        model.Table1(),
		Sizes:         []int{4, 16, 64, 128},
		TrialsPerSize: 100,
		Seed:          20100419,
	}
	var r experiments.VariancePredictorResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.VariancePredictor(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.Rows[len(r.Rows)-1].BadFraction, "bad_pct_n128")
	b.ReportMetric(r.Theta, "empirical_theta")
}

// BenchmarkVarianceThreshold regenerates the §4.3 θ-threshold Fact at the
// paper's θ = 0.167.
func BenchmarkVarianceThreshold(b *testing.B) {
	cfg := experiments.VarianceConfig{
		Params:        model.Table1(),
		Sizes:         []int{4, 64, 1024},
		TrialsPerSize: 50,
		Seed:          20100419,
	}
	var r experiments.ThresholdResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.VarianceThreshold(cfg, experiments.PaperTheta)
		if err != nil {
			b.Fatal(err)
		}
	}
	wrong := 0
	for _, row := range r.Rows {
		wrong += row.WrongAbove
	}
	b.ReportMetric(float64(wrong), "mispredictions")
}

// BenchmarkOrderInvariance measures Theorem 1.2 in schedule form: FIFO
// schedules for random startup orders of one cluster (the total work is
// asserted identical).
func BenchmarkOrderInvariance(b *testing.B) {
	m := model.Table1()
	p := profile.Linear(16)
	base, err := schedule.BuildFIFO(m, p, 1000)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := schedule.BuildFIFO(m, p.Permuted(rng.Perm(len(p))), 1000)
		if err != nil {
			b.Fatal(err)
		}
		if diff := s.TotalWork - base.TotalWork; diff > 1e-6 || diff < -1e-6 {
			b.Fatalf("order changed work: %v vs %v", s.TotalWork, base.TotalWork)
		}
	}
}

// BenchmarkSimVsAnalytic measures the discrete-event simulator replaying
// the optimal protocol (Theorem 2 validation) on a 64-computer cluster.
func BenchmarkSimVsAnalytic(b *testing.B) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(5), 64)
	proto, err := sim.OptimalFIFO(m, p, 3600)
	if err != nil {
		b.Fatal(err)
	}
	analytic := core.W(m, p, 3600)
	var res sim.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = sim.RunCEP(m, p, proto, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Completed/analytic, "sim_over_analytic")
	b.ReportMetric(float64(res.Events), "events")
}

// BenchmarkBaselineComparison measures the FIFO-vs-naive extension study.
func BenchmarkBaselineComparison(b *testing.B) {
	m := model.Table1()
	clusters := experiments.DefaultBaselineClusters(8)
	var r experiments.BaselineResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.BaselineComparison(m, 2000, clusters)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		if row.Name == "harmonic" {
			b.ReportMetric(100*row.EqualPenalty(), "harmonic_equal_loss_pct")
		}
	}
}

// BenchmarkMomentPredictors measures the moment-ablation extension study.
func BenchmarkMomentPredictors(b *testing.B) {
	var r experiments.MomentPredictorResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.MomentPredictors(model.Table1(), 8, 300, 99)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.Accuracy["geo-mean"], "geomean_acc_pct")
	b.ReportMetric(100*r.Accuracy["arith-mean"], "arithmean_acc_pct")
}

// BenchmarkXForms is the numerical ablation: the three X implementations
// at growing cluster sizes.
func BenchmarkXForms(b *testing.B) {
	m := model.Table1()
	for _, n := range []int{8, 64, 1024, 1 << 16} {
		p := profile.RandomNormalized(stats.NewRNG(uint64(n)), n)
		b.Run(formName("telescoped", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.X(m, p)
			}
		})
		b.Run(formName("direct", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.XDirect(m, p)
			}
		})
		if n <= 32 {
			b.Run(formName("rational", n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.XRational(m, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkHECR measures the headline measure across cluster scales,
// including the §4.3 extreme n = 2^16.
func BenchmarkHECR(b *testing.B) {
	m := model.Table1()
	for _, n := range []int{8, 1024, 1 << 16} {
		p := profile.RandomNormalized(stats.NewRNG(uint64(n)), n)
		b.Run(formName("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.HECR(m, p)
			}
		})
	}
}

// BenchmarkSimThroughput measures raw simulator event throughput on a
// large cluster.
func BenchmarkSimThroughput(b *testing.B) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(9), 1024)
	proto, err := sim.OptimalFIFO(m, p, 1e5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int
	for i := 0; i < b.N; i++ {
		res, err := sim.RunCEP(m, p, proto, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

func formName(prefix string, n int) string {
	switch {
	case n >= 1<<16:
		return prefix + "_65536"
	default:
		return prefix + "_" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkProtocolStudy measures the exhaustive (Σ,Φ) enumeration — the
// empirical verification of Adler–Gong–Rosenberg's Theorem 1 that the paper
// builds on.
func BenchmarkProtocolStudy(b *testing.B) {
	m := model.Table1()
	p := profile.MustNew(1, 0.6, 0.35, 0.2)
	var r experiments.ProtocolStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.ProtocolStudy(m, p, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(r.Rows)), "orders")
	worst := r.Rows[len(r.Rows)-1]
	if worst.Feasible {
		b.ReportMetric(100*worst.LossVsFIFO, "worst_loss_pct")
	}
}

// BenchmarkGeneralSchedule measures one (Σ,Φ) linear-system solve+assemble.
func BenchmarkGeneralSchedule(b *testing.B) {
	m := model.Table1()
	p := profile.MustNew(1, 0.8, 0.6, 0.45, 0.3, 0.25, 0.2, 0.15)
	phi := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < b.N; i++ {
		if _, err := schedule.BuildGeneral(m, p, phi, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictorRace measures the statistical-predictor study
// (companion-paper direction), including logistic training.
func BenchmarkPredictorRace(b *testing.B) {
	m := model.Table1()
	var r experiments.PredictorRaceResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.PredictorRace(m, 8, 150, 150, 77)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.General.Accuracy["neg-total-speed"], "totalspeed_acc_pct")
	b.ReportMetric(100*r.EqualMean.Accuracy["neg-variance"], "eqmean_var_acc_pct")
}

// BenchmarkCostEffectiveness measures the equal-budget cost study.
func BenchmarkCostEffectiveness(b *testing.B) {
	m := model.Table1()
	cost := experiments.CostModel{Alpha: 1.5}
	clusters, err := experiments.EqualBudgetClusters(cost, 8, 150)
	if err != nil {
		b.Fatal(err)
	}
	var r experiments.CostResult
	for i := 0; i < b.N; i++ {
		r, err = experiments.CostEffectiveness(m, cost, clusters)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, row := range r.Rows {
		if row.WorkPerDollar > best {
			best = row.WorkPerDollar
		}
	}
	b.ReportMetric(best, "best_work_per_price")
}

// BenchmarkLinkOrderStudy measures the heterogeneous-link startup-order
// enumeration (the regime where Theorem 1.2 fails).
func BenchmarkLinkOrderStudy(b *testing.B) {
	m := model.Table1()
	p := profile.MustNew(0.5, 0.4, 0.3, 0.2)
	taus := []float64{1e-6, 1e-3, 5e-3, 2e-2}
	var r experiments.LinkOrderStudyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.LinkOrderStudy(m, p, taus, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.Spread(), "order_spread_pct")
}

// BenchmarkXExact measures the big.Float reference evaluation.
func BenchmarkXExact(b *testing.B) {
	m := model.Table1()
	p := profile.RandomNormalized(stats.NewRNG(8), 64)
	for i := 0; i < b.N; i++ {
		_ = core.XExactFloat64(m, p)
	}
}

// BenchmarkParallelMap measures the worker-pool substrate's scaling on a
// CPU-bound microtask.
func BenchmarkParallelMap(b *testing.B) {
	work := func(i int) float64 {
		s := 0.0
		for k := 0; k < 1000; k++ {
			s += float64(i*k) * 1e-9
		}
		return s
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(formName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = parallel.Map(workers, 4096, work)
			}
		})
	}
}

// BenchmarkAdaptive measures the online speed-estimation loop (8 rounds on
// a 16-computer cluster with fluctuating speeds).
func BenchmarkAdaptive(b *testing.B) {
	cfg := adaptive.Config{
		Params:        model.Table1(),
		True:          profile.Linear(16),
		Rounds:        8,
		RoundLifespan: 500,
		Alpha:         0.5,
		Jitter:        0.1,
		Seed:          1,
	}
	var res adaptive.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = adaptive.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := res.Rounds[len(res.Rounds)-1]
	b.ReportMetric(100*last.Efficiency, "late_efficiency_pct")
}

// BenchmarkCatalogOptimize measures the exact cluster-design knapsack at a
// realistic budget.
func BenchmarkCatalogOptimize(b *testing.B) {
	m := model.Table1()
	cat := catalog.Catalog{
		{Name: "econo", Rho: 1, Price: 7},
		{Name: "mid", Rho: 0.5, Price: 18},
		{Name: "fast", Rho: 0.25, Price: 41},
		{Name: "turbo", Rho: 0.1, Price: 120},
	}
	var d catalog.Design
	var err error
	for i := 0; i < b.N; i++ {
		d, err = catalog.Optimize(m, cat, 5000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.X, "optimal_x")
	b.ReportMetric(float64(len(d.Profile)), "machines")
}

// BenchmarkHarnessMonteCarlo measures real end-to-end execution (actual
// Monte-Carlo computation under virtual model time).
func BenchmarkHarnessMonteCarlo(b *testing.B) {
	m := model.Table1()
	p := profile.MustNew(1, 0.5, 0.25, 0.125)
	task := workload.NewMonteCarlo(1, 2000)
	var rep *harness.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = harness.RunFIFO(m, p, task, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.UnitsDone), "units")
}

// BenchmarkHierarchyFold measures the recursive subtree folding on a
// 3-level, 64-leaf tree.
func BenchmarkHierarchyFold(b *testing.B) {
	m := model.Table1()
	leaves := profile.Linear(64)
	var quads []*hier.Node
	for g := 0; g < 16; g++ {
		quads = append(quads, hier.Cluster(
			hier.Leaf(leaves[4*g]), hier.Leaf(leaves[4*g+1]),
			hier.Leaf(leaves[4*g+2]), hier.Leaf(leaves[4*g+3])))
	}
	var groups []*hier.Node
	for g := 0; g < 4; g++ {
		groups = append(groups, hier.Cluster(quads[4*g:4*g+4]...))
	}
	tree := hier.Cluster(groups...)
	var x float64
	for i := 0; i < b.N; i++ {
		var err error
		x, err = tree.X(m)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(x, "tree_x")
}

// BenchmarkMultiInstallment measures the k-installment simulation sweep at
// an expensive link (the regime where installments pay).
func BenchmarkMultiInstallment(b *testing.B) {
	m := model.Params{Tau: 0.05, Pi: 1e-4, Delta: 1}
	p := profile.MustNew(1, 0.8, 0.6, 0.4)
	var gain float64
	for i := 0; i < b.N; i++ {
		_, k1, err := sim.MultiInstallment(m, p, 100, 1)
		if err != nil {
			b.Fatal(err)
		}
		_, k8, err := sim.MultiInstallment(m, p, 100, 8)
		if err != nil {
			b.Fatal(err)
		}
		gain = k8.Completed/k1.Completed - 1
	}
	b.ReportMetric(100*gain, "k8_gain_pct")
}

// BenchmarkReplicate measures the full replication certificate.
func BenchmarkReplicate(b *testing.B) {
	cfg := experiments.ReplicationConfig{VarianceTrials: 100, Seed: 20100419}
	var rep experiments.ReplicationReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = experiments.Replicate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Passed), "checks_passed")
	b.ReportMetric(float64(rep.Failed), "checks_failed")
}

// BenchmarkAPIMeasure measures the HTTP service's hot endpoint end to end
// (in-process handler, no network) with the response cache disabled —
// every request recomputes and re-renders. Compare BenchmarkAPIMeasureCached.
func BenchmarkAPIMeasure(b *testing.B) {
	h := api.NewServerCacheSize(0).Handler()
	req := httptest.NewRequest("GET", "/v1/measure?profile=1,0.5,0.25,0.125", nil)
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkSpeedupSearch compares the retained O(n²) brute-force speedup
// search against the O(n) incremental rewrite at the issue's two scales.
// The ≥10× acceptance ratio at n = 4096 is certified by cmd/benchincr.
func BenchmarkSpeedupSearch(b *testing.B) {
	m := model.Figs34()
	for _, n := range []int{256, 4096} {
		p := profile.RandomNormalized(stats.NewRNG(uint64(n)), n)
		b.Run(formName("brute", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BestMultiplicativeBruteForce(m, p, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(formName("incremental", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.BestMultiplicative(m, p, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIncrWhatIf measures a single O(1) counterfactual query against
// the cost of a fresh full scan at the same size.
func BenchmarkIncrWhatIf(b *testing.B) {
	m := model.Table1()
	for _, n := range []int{256, 4096, 1 << 16} {
		p := profile.RandomNormalized(stats.NewRNG(uint64(n)), n)
		ev, err := incr.New(m, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(formName("whatif", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ev.WhatIf(i%n, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(formName("fresh", n), func(b *testing.B) {
			q := p.Clone()
			for i := 0; i < b.N; i++ {
				q[i%n] = 0.3
				_ = core.X(m, q)
				q[i%n] = p[i%n]
			}
		})
	}
}

// BenchmarkBatchX measures the amortized batch evaluation path that the
// /v1/batch endpoint and the experiments pipeline ride on.
func BenchmarkBatchX(b *testing.B) {
	m := model.Table1()
	rng := stats.NewRNG(17)
	profiles := make([]profile.Profile, 512)
	for i := range profiles {
		profiles[i] = profile.RandomNormalized(rng, 64)
	}
	for _, workers := range []int{1, 4} {
		b.Run(formName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = incr.BatchX(m, profiles, workers)
			}
		})
	}
}

// BenchmarkAPIMeasureCached measures the hot endpoint with the response
// cache warm (every request after the first is a byte-identical hit);
// BenchmarkAPIMeasure below is the same request against a cache-disabled
// server, so the pair quantifies the serving-path win.
func BenchmarkAPIMeasureCached(b *testing.B) {
	h := api.NewServer().Handler()
	req := httptest.NewRequest("GET", "/v1/measure?profile=1,0.5,0.25,0.125", nil)
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkDecompose measures the eq. (3) proof-identity evaluation.
func BenchmarkDecompose(b *testing.B) {
	m := model.Table1()
	p := profile.Linear(16)
	for i := 0; i < b.N; i++ {
		if _, err := core.Decompose(m, p, 0, 15); err != nil {
			b.Fatal(err)
		}
	}
}
