module hetero

go 1.22
