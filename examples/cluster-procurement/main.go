// Cluster procurement: one superfast machine plus average ones, or all
// moderately fast?
//
// This is the question from the paper's abstract. Three candidate clusters
// share the same mean speed (i.e. roughly the same "total GHz" a purchasing
// spreadsheet would show); the X-measure and HECR reveal they are far from
// equally powerful, and the §4 variance heuristic explains the ranking.
//
// Run with:
//
//	go run ./examples/cluster-procurement
package main

import (
	"fmt"
	"log"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

func main() {
	env := model.Table1()

	// Three bids, one budget: mean ρ = 0.5 for all (remember: ρ is time per
	// work unit, so equal-mean ρ ≈ equal sticker aggregate).
	candidates := []struct {
		name string
		p    profile.Profile
	}{
		{"flagship: one superfast + average", profile.MustNew(0.55, 0.55, 0.55, 0.55, 0.55, 0.55, 0.55, 0.15)},
		{"balanced: all moderately fast", profile.Homogeneous(8, 0.5)},
		{"barbell: half fast, half slow", profile.MustNew(0.9, 0.9, 0.9, 0.9, 0.1, 0.1, 0.1, 0.1)},
	}

	const day = 24 * 3600.0
	t := render.NewTable("Procurement comparison (equal mean speeds)",
		"cluster", "mean ρ", "VAR", "HECR", "W(1 day)")
	for _, c := range candidates {
		t.Add(c.name,
			fmt.Sprintf("%.3f", c.p.Mean()),
			fmt.Sprintf("%.4f", c.p.Variance()),
			fmt.Sprintf("%.4f", core.HECR(env, c.p)),
			fmt.Sprintf("%.0f", core.W(env, c.p, day)))
	}
	fmt.Print(t.String())

	// Rank by X (ground truth).
	bestIdx := 0
	for i := 1; i < len(candidates); i++ {
		if core.Compare(env, candidates[i].p, candidates[bestIdx].p) > 0 {
			bestIdx = i
		}
	}
	fmt.Printf("\n→ buy the %q cluster\n\n", candidates[bestIdx].name)

	// The §4 lens: among equal-mean clusters, larger speed variance usually
	// wins (Theorem 5 makes this exact for n = 2; §4.3 measures ≈76%
	// accuracy in general, perfect above a gap of 0.167).
	fmt.Println("variance heuristic (§4): among equal-mean clusters, prefer the larger variance")
	for i, a := range candidates {
		for _, b := range candidates[i+1:] {
			winner, err := core.VarPredictsPower(a.p, b.p, 1e-9)
			if err != nil {
				log.Fatal(err)
			}
			actual := core.Compare(env, a.p, b.p)
			verdict := "✓ heuristic agrees with X"
			if (winner == 1) != (actual > 0) {
				verdict = "✗ heuristic misfires here (a §4.3 'bad pair')"
			}
			names := [2]string{a.name, b.name}
			pick := names[winner-1]
			fmt.Printf("  %s vs %s → heuristic picks %q  %s\n", a.name, b.name, pick, verdict)
		}
	}

	// Proposition 3, when it applies, certifies a winner from the
	// symmetric functions alone — no X computation needed.
	if ok, err := core.Prop3Predicts(candidates[2].p, candidates[1].p); err == nil && ok {
		fmt.Println("\nProposition 3 certifies the barbell over the balanced cluster symbolically")
	}
}
