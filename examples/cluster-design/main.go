// Cluster design studio: you have a machine catalog and a budget — what
// exactly should you buy?
//
// Because the X-measure telescopes into a per-machine additive value
// −log r(ρ), budget-constrained cluster design is an unbounded knapsack
// this library solves exactly. The example prices a small catalog, designs
// clusters at several budgets, compares against the folk heuristics, and
// then asks the §3 follow-up: once the cluster is bought, which machine
// should next year's upgrade money target?
//
// Run with:
//
//	go run ./examples/cluster-design
package main

import (
	"fmt"
	"log"

	"hetero/internal/catalog"
	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/render"
)

func main() {
	env := model.Table1()
	cat := catalog.Catalog{
		{Name: "econo", Rho: 1, Price: 7},    // baseline box
		{Name: "mid", Rho: 0.5, Price: 12},   // 2x speed at 1.7x price
		{Name: "fast", Rho: 0.25, Price: 26}, // 4x speed at 3.7x price
		{Name: "turbo", Rho: 0.1, Price: 55}, // 10x speed at 7.9x price (volume discount)
	}

	t := render.NewTable("Exact knapsack designs vs folk heuristics",
		"budget", "optimal composition", "X (optimal)", "X (buy fastest)", "X (buy most)")
	for _, budget := range []int{50, 200, 1000} {
		opt, err := catalog.Optimize(env, cat, budget)
		if err != nil {
			log.Fatal(err)
		}
		fastest, err := catalog.BuyFastest(env, cat, budget)
		if err != nil {
			log.Fatal(err)
		}
		most, err := catalog.BuyMost(env, cat, budget)
		if err != nil {
			log.Fatal(err)
		}
		composition := ""
		for i, n := range opt.Counts {
			if n > 0 {
				if composition != "" {
					composition += " + "
				}
				composition += fmt.Sprintf("%d×%s", n, cat[i].Name)
			}
		}
		t.Add(fmt.Sprintf("%d", budget), composition,
			fmt.Sprintf("%.3f", opt.X),
			fmt.Sprintf("%.3f", fastest.X),
			fmt.Sprintf("%.3f", most.X))
	}
	fmt.Print(t.String())

	// Post-purchase: next year you can halve ONE machine's ρ. §3 says which.
	opt, err := catalog.Optimize(env, cat, 200)
	if err != nil {
		log.Fatal(err)
	}
	choice, err := core.BestMultiplicative(env, opt.Profile, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupgrade advice for the 200-budget cluster %v:\n", opt.Profile)
	fmt.Printf("halve machine #%d's ρ → work ratio %.4f (Theorems 3-4: target the fastest)\n",
		choice.Index+1, choice.WorkRatio)
}
