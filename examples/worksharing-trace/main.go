// Worksharing trace: build the optimal FIFO schedule for a cluster, render
// it as the paper's Figure 2-style Gantt chart, verify every protocol
// invariant, then replay it event by event on the discrete-event simulator
// and confirm the two agree to float precision.
//
// Run with:
//
//	go run ./examples/worksharing-trace
package main

import (
	"fmt"
	"log"
	"math"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/sim"
)

func main() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.5, 0.25)
	const lifespan = 3600.0

	// 1. Construct the gap-free FIFO schedule analytically.
	s, err := schedule.BuildFIFO(env, cluster, lifespan)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		log.Fatalf("schedule failed its own invariants: %v", err)
	}
	fmt.Print(s.Gantt(96))
	fmt.Println()
	fmt.Print(s.Table())

	// 2. The communication detail the Gantt hides at this scale: zoom into
	// the last milliseconds where the result messages chain back to back.
	last := s.Computers[len(s.Computers)-1]
	fmt.Printf("\nresult-return chain (gap-free, FIFO order):\n")
	for _, c := range s.Computers {
		ret := c.Segment(schedule.SegReturn)
		fmt.Printf("  C%d: [%.6f, %.6f]  (τδ·w = %.6f)\n", c.Index+1, ret.Start, ret.End, ret.Duration())
	}
	fmt.Printf("last results arrive at exactly L = %g: %v\n", lifespan,
		math.Abs(last.ResultsArrive-lifespan) < 1e-6)

	// 3. Replay on the simulator and cross-check against Theorem 2.
	proto, err := sim.OptimalFIFO(env, cluster, lifespan)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.RunCEP(env, cluster, proto, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	analytic := core.W(env, cluster, lifespan)
	fmt.Printf("\nsimulated work:  %.6f\n", res.Completed)
	fmt.Printf("schedule work:   %.6f\n", s.TotalWork)
	fmt.Printf("Theorem 2 W(L):  %.6f\n", analytic)
	fmt.Printf("agreement:       %.2e relative\n", math.Abs(res.Completed-analytic)/analytic)

	// 4. Theorem 1.2 live: reverse the startup order; the timeline changes,
	// the work does not.
	reversed := cluster.Permuted([]int{2, 1, 0})
	s2, err := schedule.BuildFIFO(env, reversed, lifespan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreversed startup order %v completes %.6f units — same work, per Theorem 1.2\n",
		reversed, s2.TotalWork)
}
