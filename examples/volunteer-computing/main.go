// Volunteer computing: a SETI@home-style server shares a day's workload
// with a fleet of volunteer machines of wildly varying speeds — one of the
// paper's §1.2 motivating workloads (independent equal-size tasks, results
// shipped back over a shared uplink).
//
// The example draws a random volunteer fleet, computes the optimal FIFO
// work packages, shows how unequal the optimal packages are, and quantifies
// what the operator would lose by shipping everyone the same package.
//
// Run with:
//
//	go run ./examples/volunteer-computing
package main

import (
	"fmt"
	"log"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
	"hetero/internal/sim"
	"hetero/internal/stats"
)

func main() {
	env := model.Table1()
	rng := stats.NewRNG(2026)

	// 24 volunteers, speeds spread over roughly a 10× range (typical for a
	// volunteer fleet mixing laptops and workstations).
	fleet := profile.RandomNormalized(rng, 24)
	const day = 24 * 3600.0

	fmt.Printf("fleet of %d volunteers, speeds %.3f..%.3f (10x-ish spread)\n",
		len(fleet), fleet.Fastest(), fleet.Slowest())
	fmt.Printf("fleet HECR: %.4f — the whole fleet is worth %d machines of that speed\n\n",
		core.HECR(env, fleet), len(fleet))

	// Optimal FIFO work packages for one day.
	proto, err := sim.OptimalFIFO(env, fleet, day)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.RunCEP(env, fleet, proto, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	t := render.NewTable("optimal daily work packages (first 8 volunteers by startup order)",
		"volunteer", "ρ", "package (units)", "share")
	total := res.Completed
	for k := 0; k < 8 && k < len(res.Computers); k++ {
		tr := res.Computers[k]
		t.Add(fmt.Sprintf("V%d", tr.ID+1),
			fmt.Sprintf("%.3f", tr.Rho),
			fmt.Sprintf("%.0f", tr.Work),
			fmt.Sprintf("%.1f%%", 100*tr.Work/total))
	}
	fmt.Print(t.String())
	fmt.Printf("total completed in a day: %.0f units (Theorem 2 predicts %.0f)\n\n",
		res.Completed, core.W(env, fleet, day))

	// What if the operator ships identical packages instead?
	_, eq, err := sim.EqualSplit(env, fleet, day)
	if err != nil {
		log.Fatal(err)
	}
	loss := 1 - eq.CompletedBy(day)/res.Completed
	fmt.Printf("equal packages complete %.0f units — %.1f%% of the fleet's day wasted\n",
		eq.CompletedBy(day), 100*loss)

	// And if volunteers' actual speeds deviate ±20% from their benchmarks?
	jr, err := sim.RunCEP(env, fleet, proto, sim.Options{RhoJitter: 0.2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with ±20%% speed misestimation the last results arrive at %.2f%% of the day\n",
		100*jr.Makespan/day)
	fmt.Printf("…and %.1f%% of the assigned work still makes the deadline\n",
		100*jr.CompletedBy(day)/res.Completed)
}
