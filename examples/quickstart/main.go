// Quickstart: measure the computing power of a heterogeneous cluster.
//
// This example walks the library's core loop: describe an environment
// (model.Params), describe a cluster (profile.Profile), then ask the
// X-measure, HECR and work-production questions from §2 of the paper.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
)

func main() {
	// The environment: Table 1 of the paper — 1 µs transit, 10 µs
	// packaging per work unit, results as large as inputs (δ = 1).
	env := model.Table1()
	if err := env.Validate(); err != nil {
		log.Fatal(err)
	}

	// The cluster: four computers; C1 is the slowest (ρ = 1 by the paper's
	// normalization), C4 does a work unit in a quarter of the time.
	cluster, err := profile.New(1, 0.5, 1.0/3, 0.25)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster %v in environment %v\n\n", cluster, env)

	// How powerful is it? X tracks work production (Theorem 2)…
	x := core.X(env, cluster)
	fmt.Printf("X-measure:        %.4f\n", x)

	// …and the HECR makes that comparable across clusters: this cluster is
	// worth n computers of speed HECR (Proposition 1).
	fmt.Printf("HECR:             %.4f  (equivalent homogeneous speed; smaller = faster)\n",
		core.HECR(env, cluster))

	// How much work does it complete in an hour-long lifespan under the
	// provably optimal FIFO protocol?
	const hour = 3600
	fmt.Printf("W(L=1h):          %.0f work units\n", core.W(env, cluster, hour))

	// The dual (Cluster-Rental) question: how long to finish 10⁵ units?
	fmt.Printf("L(W=100000):      %.1f time units\n\n", core.RentalLifespan(env, cluster, 1e5))

	// Compare against a homogeneous cluster with the same mean speed — the
	// paper's Corollary 1 in action: heterogeneity lends power.
	mean := cluster.Mean()
	homo := profile.Homogeneous(len(cluster), mean)
	fmt.Printf("same-mean homogeneous cluster %v:\n", homo)
	fmt.Printf("  X = %.4f vs heterogeneous %.4f\n", core.X(env, homo), x)
	switch core.Compare(env, cluster, homo) {
	case 1:
		fmt.Println("  → the heterogeneous cluster wins (Corollary 1: heterogeneity lends power)")
	case -1:
		fmt.Println("  → the homogeneous cluster wins")
	default:
		fmt.Println("  → exact tie")
	}
}
