// Grid rental: you must finish a fixed batch of work and pay for cluster
// time — the Cluster-Rental Problem, the CEP's dual (footnote 3 of the
// paper). Which rentable cluster finishes a 10⁶-unit batch soonest, what
// does protocol choice cost you, and what does the per-hour bill look like?
//
// Run with:
//
//	go run ./examples/grid-rental
package main

import (
	"fmt"
	"log"

	"hetero/internal/core"
	"hetero/internal/experiments"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

func main() {
	env := model.Table1()
	const batch = 1e6 // work units to complete

	offers := []struct {
		name       string
		p          profile.Profile
		dollarRate float64 // per time unit
	}{
		{"budget-heterogeneous", profile.MustNew(1, 0.8, 0.6, 0.4, 0.3, 0.2), 1.0},
		{"premium-uniform", profile.Homogeneous(6, 0.25), 1.6},
		{"small-and-fast", profile.MustNew(0.15, 0.12, 0.1), 1.3},
	}

	t := render.NewTable(fmt.Sprintf("Rental offers for a %.0g-unit batch", batch),
		"offer", "HECR", "rental time L(W)", "bill (time × rate)")
	bestIdx, bestBill := -1, 0.0
	for i, offer := range offers {
		l := core.RentalLifespan(env, offer.p, batch)
		bill := l * offer.dollarRate
		t.Add(offer.name,
			fmt.Sprintf("%.4f", core.HECR(env, offer.p)),
			fmt.Sprintf("%.0f", l),
			fmt.Sprintf("%.0f", bill))
		if bestIdx < 0 || bill < bestBill {
			bestIdx, bestBill = i, bill
		}
	}
	fmt.Print(t.String())
	fmt.Printf("→ rent %q\n\n", offers[bestIdx].name)

	// Protocol discipline matters even after you have picked a cluster:
	// every non-FIFO finishing order stretches the rental.
	chosen := offers[bestIdx]
	study, err := experiments.ProtocolStudy(env, chosen.p.SortedDesc()[:3], 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol discipline on (a 3-machine slice of) the chosen cluster:")
	fmt.Print(study.Render())

	// The duality check: the rental time is exactly the lifespan at which
	// the CEP completes the batch.
	l := core.RentalLifespan(env, chosen.p, batch)
	fmt.Printf("\nduality: W(L(batch)) = %.1f units (batch = %.0f)\n",
		core.W(env, chosen.p, l), batch)
}
