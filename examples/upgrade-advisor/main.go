// Upgrade advisor: you can afford to replace ONE computer in your cluster —
// which one?
//
// The paper's §3 answers this twice. For an additive upgrade (shave a fixed
// φ off one computer's per-unit time) Theorem 3 says: always upgrade the
// FASTEST computer. For a multiplicative upgrade (halve one computer's
// time) Theorem 4 says: upgrade the faster of two candidates unless
// ψρᵢρⱼ < Aτδ/B². This example evaluates both for a concrete cluster and
// shows the full candidate table, so you can see how much the right choice
// matters.
//
// Run with:
//
//	go run ./examples/upgrade-advisor
package main

import (
	"fmt"
	"log"

	"hetero/internal/core"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/render"
)

func main() {
	env := model.Table1()
	cluster := profile.MustNew(1, 0.8, 0.5, 0.3, 0.2, 0.125)
	fmt.Printf("cluster %v\n", cluster)
	fmt.Printf("baseline: X = %.4f, HECR = %.4f\n\n", core.X(env, cluster), core.HECR(env, cluster))

	// Scenario 1: additive upgrade — each candidate gets φ = 0.1 shaved off.
	const phi = 0.1
	t := render.NewTable(fmt.Sprintf("additive upgrade, φ = %g", phi),
		"upgrade", "new ρ", "work ratio", "annual surplus*")
	const yearlyWork = 365 * 24 * 3600 // one year of lifespan, in work-unit time
	baseline := core.W(env, cluster, yearlyWork)
	for i := range cluster {
		// The slowest candidates may not admit the full φ; skip those the
		// same way a procurement would.
		cand, err := cluster.SpeedUpAdditive(i, phi)
		if err != nil {
			t.Add(fmt.Sprintf("C%d", i+1), "-", "n/a", "-")
			continue
		}
		ratio := core.WorkRatio(env, cand, cluster)
		t.Add(fmt.Sprintf("C%d", i+1),
			fmt.Sprintf("%.3f", cand[i]),
			fmt.Sprintf("%.4f", ratio),
			fmt.Sprintf("%+.0f units", core.W(env, cand, yearlyWork)-baseline))
	}
	fmt.Print(t.String())
	best, err := core.BestAdditive(env, cluster, phi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("→ advisor: upgrade C%d — the fastest computer, exactly as Theorem 3 predicts\n\n", best.Index+1)

	// Scenario 2: multiplicative upgrade — one machine gets twice as fast.
	const psi = 0.5
	mBest, err := core.BestMultiplicative(env, cluster, psi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplicative upgrade ψ = %g: upgrade C%d (work ratio %.4f)\n",
		psi, mBest.Index+1, mBest.WorkRatio)

	// Theorem 4's threshold explains when that flips: compare the fastest
	// and slowest pair explicitly.
	k := env.Theorem4Threshold()
	fmt.Printf("Theorem 4 threshold Aτδ/B² = %.3g\n", k)
	rhoSlow, rhoFast := cluster.Slowest(), cluster.Fastest()
	fasterWins, _, err := core.Theorem4Prefers(env, rhoSlow, rhoFast, psi)
	if err != nil {
		log.Fatal(err)
	}
	if fasterWins {
		fmt.Printf("ψρᵢρⱼ = %.3g > threshold → the faster computer is the better upgrade here\n", psi*rhoSlow*rhoFast)
	} else {
		fmt.Printf("ψρᵢρⱼ = %.3g < threshold → this cluster is in the 'very fast' regime: upgrade the slower computer\n", psi*rhoSlow*rhoFast)
	}
}
