// Package repro_test's integration test walks the repository's canonical
// pipeline end to end across package boundaries: measure a cluster, design
// its upgrade, build and verify the optimal schedule, execute it — both on
// the discrete-event simulator and as real verified computation — and
// finally check the whole paper's claim set via the replication
// certificate. Each step consumes the previous step's output, so this test
// fails if any cross-package contract drifts.
package repro_test

import (
	"math"
	"testing"

	"hetero/internal/core"
	"hetero/internal/experiments"
	"hetero/internal/harness"
	"hetero/internal/model"
	"hetero/internal/profile"
	"hetero/internal/schedule"
	"hetero/internal/sim"
	"hetero/internal/workload"
)

func TestCanonicalPipeline(t *testing.T) {
	env := model.Table1()

	// 1. Measure a cluster.
	cluster := profile.MustNew(1, 0.5, 1.0/3, 0.25)
	x := core.X(env, cluster)
	hecr := core.HECR(env, cluster)
	if !(x > 0 && hecr > cluster.Fastest() && hecr < cluster.Slowest()) {
		t.Fatalf("measures inconsistent: X=%v HECR=%v", x, hecr)
	}

	// 2. Upgrade it per Theorem 3 — the upgrade must raise X.
	choice, err := core.BestAdditive(env, cluster, 1.0/16)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Index != core.Theorem3Index(cluster) {
		t.Fatalf("upgrade advice %d contradicts Theorem 3", choice.Index)
	}
	upgraded := choice.After
	if !(core.X(env, upgraded) > x) {
		t.Fatal("upgrade did not raise X")
	}

	// 3. Build + verify the optimal schedule for the upgraded cluster.
	const lifespan = 3600.0
	sched, err := schedule.BuildFIFO(env, upgraded, lifespan)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Verify(); err != nil {
		t.Fatal(err)
	}

	// 4. Execute it on the simulator; work must match the schedule and
	// Theorem 2.
	proto, err := sim.OptimalFIFO(env, upgraded, lifespan)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.RunCEP(env, upgraded, proto, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := core.W(env, upgraded, lifespan)
	if math.Abs(run.Completed-want) > 1e-9*want {
		t.Fatalf("simulated %v, Theorem 2 %v", run.Completed, want)
	}
	if math.Abs(run.Completed-sched.TotalWork) > 1e-9*want {
		t.Fatalf("simulator and schedule disagree: %v vs %v", run.Completed, sched.TotalWork)
	}

	// 5. Execute REAL work under the same protocol (smaller L so the test
	// stays fast) and verify the digests sequentially.
	task := workload.NewMonteCarlo(7, 500)
	rep, err := harness.RunFIFO(env, upgraded, task, 60)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.VerifySequential(task); err != nil {
		t.Fatal(err)
	}
	if rep.UnitsDone == 0 {
		t.Fatal("no real work done")
	}

	// 6. Certify the paper.
	cert, err := experiments.Replicate(experiments.ReplicationConfig{VarianceTrials: 120, Seed: 20100419})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Failed != 0 {
		t.Fatalf("replication certificate failed:\n%s", cert.Render())
	}
}
